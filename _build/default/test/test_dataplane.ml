(* Data-plane generation tests: golden lab networks (the §4.3.1 stand-in),
   convergence behaviour (Figure 1), determinism, and session checks. *)

let check = Alcotest.check

let cfg lines = fst (Parse.parse_config (String.concat "\n" lines))

let compute ?options ?env texts =
  Dataplane.compute ?options ?env (List.map cfg texts)

let routes_to node (dp : Dataplane.t) pfx =
  Rib.best (Dataplane.node dp node).Dataplane.nr_main (Prefix.of_string pfx)

let fib_actions node dp ip =
  Fib.lookup (Dataplane.node dp node).Dataplane.nr_fib (Ipv4.of_string ip)

(* --- OSPF triangle: costs must pick the 2-hop path --- *)

let ospf_triangle () =
  let r1 =
    [ "hostname r1";
      "interface Loopback0"; " ip address 1.1.1.1 255.255.255.255";
      " ip ospf area 0"; " ip ospf cost 1";
      "interface e12"; " ip address 10.0.12.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface e13"; " ip address 10.0.13.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 30";
      "router ospf 1"; " router-id 1.1.1.1"; " passive-interface Loopback0" ]
  and r2 =
    [ "hostname r2";
      "interface Loopback0"; " ip address 2.2.2.2 255.255.255.255";
      " ip ospf area 0"; " ip ospf cost 1";
      "interface e12"; " ip address 10.0.12.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface e23"; " ip address 10.0.23.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1"; " router-id 2.2.2.2"; " passive-interface Loopback0" ]
  and r3 =
    [ "hostname r3";
      "interface Loopback0"; " ip address 3.3.3.3 255.255.255.255";
      " ip ospf area 0"; " ip ospf cost 1";
      "interface e13"; " ip address 10.0.13.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 30";
      "interface e23"; " ip address 10.0.23.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1"; " router-id 3.3.3.3"; " passive-interface Loopback0" ]
  in
  let dp = compute [ r1; r2; r3 ] in
  check Alcotest.bool "converged" true dp.Dataplane.converged;
  (match routes_to "r1" dp "3.3.3.3/32" with
   | [ r ] ->
     check Alcotest.int "metric via r2" 21 r.Route.metric;
     check Alcotest.bool "nh is r2" true
       (Route.next_hop_ip r = Some (Ipv4.of_string "10.0.12.2"))
   | l -> Alcotest.failf "expected 1 route, got %d" (List.length l));
  (* FIB forwards toward r2 *)
  (match fib_actions "r1" dp "3.3.3.3" with
   | [ Fib.Forward { out_iface; gateway = Some g } ] ->
     check Alcotest.string "out iface" "e12" out_iface;
     check Alcotest.string "gateway" "10.0.12.2" (Ipv4.to_string g)
   | _ -> Alcotest.fail "expected single forward action");
  (* r2 receives traffic to its own loopback *)
  check Alcotest.bool "receive own loopback" true
    (fib_actions "r2" dp "2.2.2.2" = [ Fib.Receive ])

(* --- OSPF ECMP diamond --- *)

let ospf_ecmp () =
  let mk name lo (links : (string * string) list) =
    [ "hostname " ^ name;
      "interface Loopback0"; Printf.sprintf " ip address %s 255.255.255.255" lo;
      " ip ospf area 0"; " ip ospf cost 1" ]
    @ List.concat_map
        (fun (iface, addr) ->
          [ "interface " ^ iface;
            Printf.sprintf " ip address %s 255.255.255.252" addr;
            " ip ospf area 0"; " ip ospf cost 10" ])
        links
    @ [ "router ospf 1"; " maximum-paths 4"; " passive-interface Loopback0" ]
  in
  let r1 = mk "r1" "1.1.1.1" [ ("e12", "10.0.12.1"); ("e13", "10.0.13.1") ] in
  let r2 = mk "r2" "2.2.2.2" [ ("e12", "10.0.12.2"); ("e24", "10.0.24.1") ] in
  let r3 = mk "r3" "3.3.3.3" [ ("e13", "10.0.13.2"); ("e34", "10.0.34.1") ] in
  let r4 = mk "r4" "4.4.4.4" [ ("e24", "10.0.24.2"); ("e34", "10.0.34.2") ] in
  let dp = compute [ r1; r2; r3; r4 ] in
  (match routes_to "r1" dp "4.4.4.4/32" with
   | routes ->
     check Alcotest.int "two ecmp routes" 2 (List.length routes));
  check Alcotest.int "two fib actions" 2 (List.length (fib_actions "r1" dp "4.4.4.4"))

(* --- eBGP chain --- *)

let ebgp_chain_cfgs () =
  let r1 =
    [ "hostname r1";
      "interface lan"; " ip address 10.1.0.1 255.255.0.0";
      "interface e12"; " ip address 192.168.12.1 255.255.255.252";
      "router bgp 100";
      " bgp router-id 1.1.1.1";
      " neighbor 192.168.12.2 remote-as 200";
      " network 10.1.0.0 mask 255.255.0.0" ]
  and r2 =
    [ "hostname r2";
      "interface e12"; " ip address 192.168.12.2 255.255.255.252";
      "interface e23"; " ip address 192.168.23.1 255.255.255.252";
      "router bgp 200";
      " bgp router-id 2.2.2.2";
      " neighbor 192.168.12.1 remote-as 100";
      " neighbor 192.168.23.2 remote-as 300" ]
  and r3 =
    [ "hostname r3";
      "interface e23"; " ip address 192.168.23.2 255.255.255.252";
      "router bgp 300";
      " bgp router-id 3.3.3.3";
      " neighbor 192.168.23.1 remote-as 200" ]
  in
  [ r1; r2; r3 ]

let ebgp_chain () =
  let dp = compute (ebgp_chain_cfgs ()) in
  check Alcotest.bool "converged" true dp.Dataplane.converged;
  check Alcotest.bool "no oscillation" false dp.Dataplane.oscillated;
  (match routes_to "r3" dp "10.1.0.0/16" with
   | [ r ] ->
     check Alcotest.bool "ebgp" true (r.Route.protocol = Route_proto.Ebgp);
     let a = Route.get_attrs r in
     check Alcotest.(list int) "as path" [ 200; 100 ] a.Attrs.as_path;
     check Alcotest.bool "nh is r2" true
       (Route.next_hop_ip r = Some (Ipv4.of_string "192.168.23.1"))
   | l -> Alcotest.failf "expected 1 route at r3, got %d" (List.length l));
  (match routes_to "r2" dp "10.1.0.0/16" with
   | [ r ] ->
     check Alcotest.(list int) "one-hop path" [ 100 ] (Route.get_attrs r).Attrs.as_path
   | _ -> Alcotest.fail "expected 1 route at r2");
  (* all sessions up *)
  check Alcotest.bool "sessions up" true
    (List.for_all (fun s -> s.Dataplane.sr_established) dp.Dataplane.sessions);
  (* r3 forwards toward r2 *)
  (match fib_actions "r3" dp "10.1.5.5" with
   | [ Fib.Forward { gateway = Some g; _ } ] ->
     check Alcotest.string "gateway r2" "192.168.23.1" (Ipv4.to_string g)
   | _ -> Alcotest.fail "expected forward at r3")

(* --- iBGP over OSPF with a route reflector and next-hop-self --- *)

let ibgp_rr () =
  let core =
    [ "hostname core";
      "interface Loopback0"; " ip address 10.255.0.1 255.255.255.255"; " ip ospf area 0"; " ip ospf cost 1";
      "interface e1"; " ip address 10.0.1.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface e2"; " ip address 10.0.2.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1"; " passive-interface Loopback0";
      "router bgp 65000";
      " bgp router-id 10.255.0.1";
      " bgp cluster-id 10.255.0.1";
      " neighbor 10.255.0.2 remote-as 65000";
      " neighbor 10.255.0.2 update-source Loopback0";
      " neighbor 10.255.0.2 route-reflector-client";
      " neighbor 10.255.0.3 remote-as 65000";
      " neighbor 10.255.0.3 update-source Loopback0";
      " neighbor 10.255.0.3 route-reflector-client" ]
  and border =
    [ "hostname border";
      "interface Loopback0"; " ip address 10.255.0.2 255.255.255.255"; " ip ospf area 0"; " ip ospf cost 1";
      "interface e1"; " ip address 10.0.1.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface ext"; " ip address 203.0.113.2 255.255.255.252";
      "router ospf 1"; " passive-interface Loopback0";
      "router bgp 65000";
      " bgp router-id 10.255.0.2";
      " neighbor 10.255.0.1 remote-as 65000";
      " neighbor 10.255.0.1 update-source Loopback0";
      " neighbor 10.255.0.1 next-hop-self";
      " neighbor 203.0.113.1 remote-as 65010" ]
  and leaf =
    [ "hostname leaf";
      "interface Loopback0"; " ip address 10.255.0.3 255.255.255.255"; " ip ospf area 0"; " ip ospf cost 1";
      "interface e2"; " ip address 10.0.2.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1"; " passive-interface Loopback0";
      "router bgp 65000";
      " bgp router-id 10.255.0.3";
      " neighbor 10.255.0.1 remote-as 65000";
      " neighbor 10.255.0.1 update-source Loopback0" ]
  in
  let env =
    Dp_env.make
      [ Dp_env.peer ~ip:(Ipv4.of_string "203.0.113.1") ~asn:65010
          [ Dp_env.announce (Prefix.of_string "8.8.8.0/24") ] ]
  in
  let dp = compute ~env [ core; border; leaf ] in
  check Alcotest.bool "converged" true dp.Dataplane.converged;
  (* border got the external route *)
  (match routes_to "border" dp "8.8.8.0/24" with
   | [ r ] -> check Alcotest.bool "ebgp at border" true (r.Route.protocol = Route_proto.Ebgp)
   | l -> Alcotest.failf "expected external route at border, got %d" (List.length l));
  (* leaf learns it through the RR, with next-hop-self applied at border *)
  (match routes_to "leaf" dp "8.8.8.0/24" with
   | [ r ] ->
     check Alcotest.bool "ibgp at leaf" true (r.Route.protocol = Route_proto.Ibgp);
     check Alcotest.bool "nh is border loopback" true
       (Route.next_hop_ip r = Some (Ipv4.of_string "10.255.0.2"));
     let a = Route.get_attrs r in
     check Alcotest.bool "originator set" true (a.Attrs.originator_id <> 0);
     check Alcotest.bool "cluster list non-empty" true (a.Attrs.cluster_list <> [])
   | l -> Alcotest.failf "expected reflected route at leaf, got %d" (List.length l));
  (* leaf's FIB resolves the loopback next hop recursively via OSPF *)
  (match fib_actions "leaf" dp "8.8.8.8" with
   | [ Fib.Forward { out_iface = "e2"; gateway = Some g } ] ->
     check Alcotest.string "recursive gateway" "10.0.2.1" (Ipv4.to_string g)
   | _ -> Alcotest.fail "expected recursive resolution at leaf")

(* --- static routes: recursion, null, interface --- *)

let statics () =
  let r1 =
    [ "hostname r1";
      "interface e1"; " ip address 10.0.12.1 255.255.255.252";
      "ip route 0.0.0.0 0.0.0.0 10.0.12.2";
      (* recursive: next hop resolved via the default route *)
      "ip route 172.16.0.0 255.255.0.0 99.99.99.99";
      "ip route 10.99.0.0 255.255.0.0 Null0";
      "ip route 10.98.0.0 255.255.0.0 MissingIface" ]
  and r2 = [ "hostname r2"; "interface e1"; " ip address 10.0.12.2 255.255.255.252" ] in
  let dp = compute [ r1; r2 ] in
  (match fib_actions "r1" dp "8.8.8.8" with
   | [ Fib.Forward { gateway = Some g; _ } ] ->
     check Alcotest.string "default gw" "10.0.12.2" (Ipv4.to_string g)
   | _ -> Alcotest.fail "default route expected");
  (match fib_actions "r1" dp "172.16.5.5" with
   | [ Fib.Forward { gateway = Some g; _ } ] ->
     (* recursive resolution lands on the directly connected gateway of the
        resolving (default) route *)
     check Alcotest.string "recursive static resolves via default" "10.0.12.2"
       (Ipv4.to_string g)
   | _ -> Alcotest.fail "expected recursive forward");
  check Alcotest.bool "null routed" true (fib_actions "r1" dp "10.99.1.1" = [ Fib.Drop_null ]);
  (* the unresolvable static is not installed; traffic falls to the default *)
  check Alcotest.int "missing iface inactive" 0
    (List.length (routes_to "r1" dp "10.98.0.0/16"))

(* --- Figure 1b: mutual-export oscillation under lockstep, stable when
   colored --- *)

let fig1b_cfgs () =
  let border n my_ip peer_ip ext_ip =
    [ "hostname " ^ n;
      "interface ibgp"; Printf.sprintf " ip address %s 255.255.255.252" my_ip;
      "interface ext"; Printf.sprintf " ip address %s 255.255.255.252" ext_ip;
      "route-map FROM_IBGP permit 10";
      " set local-preference 200";
      "router bgp 65000";
      Printf.sprintf " bgp router-id %s" my_ip;
      Printf.sprintf " neighbor %s remote-as 65000" peer_ip;
      Printf.sprintf " neighbor %s route-map FROM_IBGP in" peer_ip;
      " neighbor " ^ (if n = "b1" then "203.0.1.1" else "203.0.2.1") ^ " remote-as 65010" ]
  in
  let b1 = border "b1" "10.0.0.1" "10.0.0.2" "203.0.1.2" in
  let b2 = border "b2" "10.0.0.2" "10.0.0.1" "203.0.2.2" in
  let env =
    Dp_env.make
      [ Dp_env.peer ~ip:(Ipv4.of_string "203.0.1.1") ~asn:65010
          [ Dp_env.announce (Prefix.of_string "10.0.0.0/8") ];
        Dp_env.peer ~ip:(Ipv4.of_string "203.0.2.1") ~asn:65010
          [ Dp_env.announce (Prefix.of_string "10.0.0.0/8") ] ]
  in
  ([ b1; b2 ], env)

let fig1b_colored () =
  let cfgs, env = fig1b_cfgs () in
  let dp = compute ~env cfgs in
  check Alcotest.bool "colored converges" true dp.Dataplane.converged;
  check Alcotest.bool "no oscillation" false dp.Dataplane.oscillated;
  (* one of the two borders uses the internal path, the other external *)
  let proto n =
    match routes_to n dp "10.0.0.0/8" with
    | r :: _ -> r.Route.protocol
    | [] -> Alcotest.failf "no route at %s" n
  in
  let protos = List.sort compare [ proto "b1"; proto "b2" ] in
  check Alcotest.bool "one internal, one external" true
    (protos = [ Route_proto.Ebgp; Route_proto.Ibgp ])

let fig1b_lockstep () =
  let cfgs, env = fig1b_cfgs () in
  let options =
    { Dataplane.default_options with
      schedule = Dataplane.Lockstep; max_rounds = 60 }
  in
  let dp = compute ~options ~env cfgs in
  check Alcotest.bool "lockstep oscillates" true dp.Dataplane.oscillated;
  check Alcotest.bool "not converged" false dp.Dataplane.converged

(* --- determinism: identical runs, and identical across worker counts --- *)

let dump dp =
  List.concat_map
    (fun n ->
      let nr = Dataplane.node dp n in
      List.map
        (fun r -> n ^ "|" ^ Route.to_string r)
        (List.sort compare (Rib.best_routes nr.Dataplane.nr_main)))
    dp.Dataplane.node_order

let determinism () =
  let cfgs, env = fig1b_cfgs () in
  let d1 = dump (compute ~env cfgs) in
  let d2 = dump (compute ~env cfgs) in
  check Alcotest.(list string) "same run twice" d1 d2;
  let chain = ebgp_chain_cfgs () in
  let base = dump (compute chain) in
  let par =
    dump
      (compute
         ~options:{ Dataplane.default_options with domains = 4 }
         chain)
  in
  check Alcotest.(list string) "parallel equals sequential" base par

(* --- session establishment failures --- *)

let session_down_reasons () =
  let r1 =
    [ "hostname r1";
      "interface e1"; " ip address 10.0.12.1 255.255.255.252";
      " ip access-group BLOCK_BGP out";
      "ip access-list extended BLOCK_BGP";
      " 10 deny tcp any any eq 179";
      " 15 deny tcp any eq 179 any";
      " 20 permit ip any any";
      "router bgp 100";
      " neighbor 10.0.12.2 remote-as 200" ]
  and r2 =
    [ "hostname r2";
      "interface e1"; " ip address 10.0.12.2 255.255.255.252";
      "router bgp 200";
      " neighbor 10.0.12.1 remote-as 100" ]
  in
  let dp = compute [ r1; r2 ] in
  let down = List.filter (fun s -> not s.Dataplane.sr_established) dp.Dataplane.sessions in
  check Alcotest.int "both sides down" 2 (List.length down);
  check Alcotest.bool "acl reason" true
    (List.exists
       (fun s ->
         match s.Dataplane.sr_reason with
         | Some r -> r = "BGP TCP session blocked by ACL"
         | None -> false)
       down)

(* An ACL blocking only one connection direction does not bring the session
   down: the other side can still initiate (a real-router subtlety). *)
let session_one_way_acl () =
  let r1 =
    [ "hostname r1";
      "interface e1"; " ip address 10.0.12.1 255.255.255.252";
      " ip access-group HALF out";
      "ip access-list extended HALF";
      " 10 deny tcp any any eq 179";
      " 20 permit ip any any";
      "router bgp 100";
      " neighbor 10.0.12.2 remote-as 200" ]
  and r2 =
    [ "hostname r2";
      "interface e1"; " ip address 10.0.12.2 255.255.255.252";
      "router bgp 200";
      " neighbor 10.0.12.1 remote-as 100" ]
  in
  let dp = compute [ r1; r2 ] in
  check Alcotest.bool "session survives one-way block" true
    (List.for_all (fun s -> s.Dataplane.sr_established) dp.Dataplane.sessions)

let session_as_mismatch () =
  let r1 =
    [ "hostname r1";
      "interface e1"; " ip address 10.0.12.1 255.255.255.252";
      "router bgp 100";
      " neighbor 10.0.12.2 remote-as 999" ]
  and r2 =
    [ "hostname r2";
      "interface e1"; " ip address 10.0.12.2 255.255.255.252";
      "router bgp 200";
      " neighbor 10.0.12.1 remote-as 100" ]
  in
  let dp = compute [ r1; r2 ] in
  check Alcotest.bool "as mismatch detected" true
    (List.exists
       (fun s ->
         (not s.Dataplane.sr_established)
         && (match s.Dataplane.sr_reason with
             | Some r -> String.length r >= 8 && String.sub r 0 8 = "remote-a"
             | None -> false))
       dp.Dataplane.sessions)

(* --- environment: link down changes routing --- *)

let link_down () =
  let r1 =
    [ "hostname r1";
      "interface e12"; " ip address 10.0.12.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface e13"; " ip address 10.0.13.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 100";
      "router ospf 1" ]
  and r2 =
    [ "hostname r2";
      "interface e12"; " ip address 10.0.12.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "interface e23"; " ip address 10.0.23.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1" ]
  and r3 =
    [ "hostname r3";
      "interface Loopback0"; " ip address 3.3.3.3 255.255.255.255"; " ip ospf area 0"; " ip ospf cost 1";
      "interface e13"; " ip address 10.0.13.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 100";
      "interface e23"; " ip address 10.0.23.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
      "router ospf 1"; " passive-interface Loopback0" ]
  in
  let base = compute [ r1; r2; r3 ] in
  (match routes_to "r1" base "3.3.3.3/32" with
   | [ r ] -> check Alcotest.int "via r2" 21 r.Route.metric
   | _ -> Alcotest.fail "expected route");
  let env = Dp_env.make ~down_links:[ ("r1", "e12") ] [] in
  let broken = compute ~env [ r1; r2; r3 ] in
  (match routes_to "r1" broken "3.3.3.3/32" with
   | [ r ] -> check Alcotest.int "fails over to direct" 101 r.Route.metric
   | _ -> Alcotest.fail "expected failover route")

let suites =
  [ ( "dataplane.ospf",
      [ Alcotest.test_case "triangle" `Quick ospf_triangle;
        Alcotest.test_case "ecmp" `Quick ospf_ecmp;
        Alcotest.test_case "link down" `Quick link_down ] );
    ( "dataplane.bgp",
      [ Alcotest.test_case "ebgp chain" `Quick ebgp_chain;
        Alcotest.test_case "ibgp rr" `Quick ibgp_rr;
        Alcotest.test_case "statics" `Quick statics ] );
    ( "dataplane.convergence",
      [ Alcotest.test_case "fig1b colored" `Quick fig1b_colored;
        Alcotest.test_case "fig1b lockstep" `Quick fig1b_lockstep;
        Alcotest.test_case "determinism" `Quick determinism ] );
    ( "dataplane.sessions",
      [ Alcotest.test_case "acl blocks tcp/179" `Quick session_down_reasons;
        Alcotest.test_case "one-way acl still up" `Quick session_one_way_acl;
        Alcotest.test_case "as mismatch" `Quick session_as_mismatch ] ) ]
