(* Baseline engines: the Datalog engine + control-plane model, the
   difference-of-cubes (HSA) engine, and Atomic Predicates — each
   cross-checked against the production engines. *)

let check = Alcotest.check

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Datalog engine --- *)

let datalog_tc () =
  let db = Datalog.create () in
  let e = Datalog.sym db in
  Datalog.fact db "edge" [| e "a"; e "b" |];
  Datalog.fact db "edge" [| e "b"; e "c" |];
  Datalog.fact db "edge" [| e "c"; e "d" |];
  Datalog.rule db ~head:("path", [| Datalog.V 0; Datalog.V 1 |])
    ~body:[ ("edge", [| Datalog.V 0; Datalog.V 1 |]) ] ();
  Datalog.rule db ~head:("path", [| Datalog.V 0; Datalog.V 2 |])
    ~body:[ ("path", [| Datalog.V 0; Datalog.V 1 |]); ("edge", [| Datalog.V 1; Datalog.V 2 |]) ]
    ();
  Datalog.solve db;
  check Alcotest.int "transitive closure size" 6 (Datalog.relation_size db "path");
  check Alcotest.bool "a reaches d" true
    (List.exists (fun t -> t.(0) = e "a" && t.(1) = e "d") (Datalog.tuples db "path"))

let datalog_guards_computes () =
  let db = Datalog.create () in
  Datalog.fact db "n" [| 3 |];
  Datalog.fact db "n" [| 7 |];
  Datalog.fact db "n" [| 12 |];
  Datalog.rule db ~head:("double", [| Datalog.V 0; Datalog.V 1 |])
    ~body:[ ("n", [| Datalog.V 0 |]) ]
    ~guards:[ (fun b -> b.(0) < 10) ]
    ~computes:[ (1, fun b -> b.(0) * 2) ]
    ();
  Datalog.solve db;
  let doubles = List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Datalog.tuples db "double")) in
  check Alcotest.(list (pair int int)) "guard+compute" [ (3, 6); (7, 14) ] doubles

let datalog_agg () =
  let db = Datalog.create () in
  Datalog.fact db "cost" [| 1; 10 |];
  Datalog.fact db "cost" [| 1; 4 |];
  Datalog.fact db "cost" [| 2; 7 |];
  Datalog.agg_min db ~head:("best", [| Datalog.V 0; Datalog.V 1 |])
    ~source:("cost", [| Datalog.V 0; Datalog.V 1 |])
    ~value:1;
  Datalog.solve db;
  let best = List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Datalog.tuples db "best")) in
  check Alcotest.(list (pair int int)) "min per group" [ (1, 4); (2, 7) ] best

let datalog_strata () =
  let db = Datalog.create () in
  Datalog.fact db "x" [| 5 |];
  Datalog.rule db ~head:("y", [| Datalog.V 0 |]) ~body:[ ("x", [| Datalog.V 0 |]) ] ();
  Datalog.stratum db;
  (* the second stratum sees y's fixpoint *)
  Datalog.rule db ~head:("z", [| Datalog.V 0 |]) ~body:[ ("y", [| Datalog.V 0 |]) ] ();
  Datalog.solve db;
  check Alcotest.int "z derived across strata" 1 (Datalog.relation_size db "z")

(* --- Datalog control-plane model vs the imperative engine --- *)

let imp_coverage dp =
  List.sort_uniq compare
    (List.concat_map
       (fun n ->
         let nr = Dataplane.node dp n in
         Rib.fold_best
           (fun p best acc -> if best <> [] then (n, p) :: acc else acc)
           nr.Dataplane.nr_main [])
       dp.Dataplane.node_order)

let datalog_cp_clos () =
  let net = Netgen.clos ~name:"dlt" ~spines:2 ~leaves:4 () in
  let configs = List.map (fun (_, t) -> fst (Parse.parse_config t)) net.Netgen.n_configs in
  let dp = Dataplane.compute ~env:net.Netgen.n_env configs in
  let dl = Datalog_cp.run ~configs ~env:net.Netgen.n_env in
  let imp = imp_coverage dp in
  let cov = Datalog_cp.coverage dl in
  (* everything datalog derives, the imperative engine also has *)
  check Alcotest.bool "datalog subset of imperative" true
    (List.for_all (fun x -> List.mem x imp) cov);
  (* every leaf must reach every host prefix (the BGP fabric works) *)
  let host_prefixes =
    List.filter_map
      (fun (_, p) -> if Prefix.length p = 24 && Prefix.contains (Prefix.of_string "172.16.0.0/12") (Prefix.network p) then Some p else None)
      cov
    |> List.sort_uniq compare
  in
  check Alcotest.int "4 host prefixes" 4 (List.length host_prefixes);
  List.iter
    (fun leaf ->
      List.iter
        (fun p ->
          check Alcotest.bool
            (Printf.sprintf "%s has %s" leaf (Prefix.to_string p))
            true
            (List.mem (leaf, p) cov))
        host_prefixes)
    [ "dlt-leaf1"; "dlt-leaf2"; "dlt-leaf3"; "dlt-leaf4" ];
  (* the solver retains far more facts than final routes (Lesson 1) *)
  check Alcotest.bool "intermediate fact blow-up" true
    (dl.Datalog_cp.derived_facts > 2 * List.length cov)

(* --- cubes --- *)

let packet_gen =
  QCheck.Gen.(
    map2
      (fun (s, d) (proto, sp, dp_, fl) ->
        { Packet.default with src_ip = s land 0xFFFF_FFFF; dst_ip = d land 0xFFFF_FFFF;
          protocol = proto; src_port = sp; dst_port = dp_; tcp_flags = fl })
      (pair (int_range 0 0xFFFF_FFFF) (int_range 0 0xFFFF_FFFF))
      (quad (oneofl [ 1; 6; 17 ]) (int_bound 65535) (int_bound 65535) (int_bound 255)))

let cube_gen =
  (* random cube: constrain a few random fields *)
  QCheck.Gen.(
    map2
      (fun p mask ->
        let c = ref Cube.star in
        if mask land 1 = 1 then c := Cube.set_field !c Cube.dst_ip_off 32 p.Packet.dst_ip;
        if mask land 2 = 2 then c := Cube.set_field !c Cube.src_ip_off 32 p.Packet.src_ip;
        if mask land 4 = 4 then c := Cube.set_field !c Cube.proto_off 8 p.Packet.protocol;
        if mask land 8 = 8 then c := Cube.set_field !c Cube.dst_port_off 16 p.Packet.dst_port;
        !c)
      packet_gen (int_bound 15))

let cube_intersect_semantics =
  qtest "cube intersect = conjunction"
    (QCheck.make QCheck.Gen.(triple cube_gen cube_gen packet_gen))
    (fun (a, b, p) ->
      let both =
        match Cube.intersect a b with
        | Some c -> Cube.matches c p
        | None -> false
      in
      both = (Cube.matches a p && Cube.matches b p))

let cube_subtract_semantics =
  qtest "cube subtract = and-not"
    (QCheck.make QCheck.Gen.(triple cube_gen cube_gen packet_gen))
    (fun (a, b, p) ->
      Cube.member (Cube.subtract a b) p = (Cube.matches a p && not (Cube.matches b p)))

let cube_port_range =
  qtest "port range cubes"
    (QCheck.make QCheck.Gen.(triple (int_bound 65535) (int_bound 65535) packet_gen))
    (fun (a, b, p) ->
      let lo = min a b and hi = max a b in
      Cube.member (Cube.port_range Cube.dst_port_off lo hi) p
      = (p.Packet.dst_port >= lo && p.Packet.dst_port <= hi))

(* --- HSA engine vs BDD engine --- *)

let hsa_network () =
  let texts =
    [ [ "hostname r1";
        "interface hosts"; " ip address 10.1.0.1 255.255.0.0";
        "interface e1"; " ip address 10.0.1.1 255.255.255.252";
        "ip route 10.9.0.0 255.255.0.0 10.0.1.2" ];
      [ "hostname r2";
        "interface e1"; " ip address 10.0.1.2 255.255.255.252";
        "interface servers"; " ip address 10.9.0.1 255.255.0.0";
        " ip access-group PROTECT out";
        "ip access-list extended PROTECT";
        " 10 permit tcp any any eq 80";
        " 15 permit tcp any any established";
        " 20 deny ip any any";
        "ip route 10.1.0.0 255.255.0.0 10.0.1.1" ] ]
  in
  let configs = List.map (fun t -> fst (Parse.parse_config (String.concat "\n" t))) texts in
  let dp = Dataplane.compute configs in
  let find name = List.find_opt (fun (c : Vi.t) -> c.hostname = name) configs in
  (find, dp)

let hsa_matches_bdd =
  let find, dp = hsa_network () in
  let hsa = Hsa_engine.build ~configs:find ~dp in
  let q = Fquery.make ~configs:find ~dp () in
  let e = Fquery.env q in
  let deliver_bdd = Fquery.to_delivered q () in
  let deliver_hsa = Hsa_engine.to_delivered hsa in
  qtest ~count:200 "hsa delivered = bdd delivered" (QCheck.make packet_gen) (fun p ->
      List.for_all
        (fun ((node, iface), cube_set) ->
          match Fgraph.loc_id q.Fquery.g (Fgraph.Src (node, iface)) with
          | None -> true
          | Some id ->
            let p =
              (* bias destinations toward the network occasionally *)
              if p.Packet.dst_port mod 3 = 0 then
                { p with Packet.dst_ip = Ipv4.of_string "10.9.0.5" }
              else p
            in
            Cube.member cube_set p = Pktset.mem e deliver_bdd.(id) p)
        deliver_hsa)

let hsa_multipath () =
  let find, dp = hsa_network () in
  let hsa = Hsa_engine.build ~configs:find ~dp in
  (* this network is consistent *)
  check Alcotest.int "no violations" 0 (List.length (Hsa_engine.multipath_consistency hsa))

(* --- APT vs BDD --- *)

let apt_matches_bdd () =
  let find, dp = hsa_network () in
  let q = Fquery.make ~configs:find ~dp () in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let apt = Apt.build q.Fquery.g in
  check Alcotest.bool "atoms exist" true (Apt.atom_count apt > 1);
  let targets =
    Fgraph.locs_where q.Fquery.g (function
      | Fgraph.Dst _ | Fgraph.Accept _ -> true
      | _ -> false)
  in
  match Fgraph.loc_id q.Fquery.g (Fgraph.Src ("r1", "hosts")) with
  | None -> Alcotest.fail "missing loc"
  | Some src ->
    let apt_reach = Apt.reach apt q.Fquery.g ~src ~targets in
    let deliver = Fquery.to_delivered q () in
    (* restrict to headers without extra bits: APT ignores them *)
    let clean = Fquery.clean q in
    check Alcotest.bool "apt = bdd on clean headers" true
      (Bdd.equal (Bdd.band man apt_reach clean) (Bdd.band man deliver.(src) clean))

let suites =
  [ ( "datalog.engine",
      [ Alcotest.test_case "transitive closure" `Quick datalog_tc;
        Alcotest.test_case "guards+computes" `Quick datalog_guards_computes;
        Alcotest.test_case "aggregation" `Quick datalog_agg;
        Alcotest.test_case "strata" `Quick datalog_strata ] );
    ("datalog.cp", [ Alcotest.test_case "clos equivalence" `Quick datalog_cp_clos ]);
    ( "hsa.cubes",
      [ cube_intersect_semantics; cube_subtract_semantics; cube_port_range ] );
    ( "hsa.engine",
      [ hsa_matches_bdd; Alcotest.test_case "multipath" `Quick hsa_multipath ] );
    ("apt", [ Alcotest.test_case "reach = bdd" `Quick apt_matches_bdd ]) ]
