(* Tests for topology inference, coloring, RIBs, comparators, and policy. *)

let check = Alcotest.check

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Coloring --- *)

let coloring_valid =
  qtest "greedy coloring is proper"
    QCheck.(pair (int_range 1 40) (list (pair (int_bound 39) (int_bound 39))))
    (fun (n, raw_edges) ->
      let edges = List.map (fun (a, b) -> (a mod n, b mod n)) raw_edges in
      let coloring = Coloring.greedy ~n edges in
      Coloring.valid ~n edges coloring)

let coloring_deterministic =
  qtest "coloring deterministic"
    QCheck.(pair (int_range 1 20) (list (pair (int_bound 19) (int_bound 19))))
    (fun (n, raw_edges) ->
      let edges = List.map (fun (a, b) -> (a mod n, b mod n)) raw_edges in
      Coloring.greedy ~n edges = Coloring.greedy ~n edges)

let coloring_units () =
  (* Triangle needs 3 colors; path needs 2. *)
  let tri = Coloring.greedy ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check Alcotest.int "triangle" 3 (Coloring.count tri);
  let path = Coloring.greedy ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check Alcotest.int "path" 2 (Coloring.count path);
  let classes = Coloring.classes path in
  check Alcotest.int "classes partition" 4
    (Array.fold_left (fun acc c -> acc + List.length c) 0 classes)

(* --- SCC --- *)

let scc_units () =
  (* 0 -> 1 -> 2 -> 0 is one component; 3 alone. *)
  let adj = [| [ 1 ]; [ 2 ]; [ 0 ]; [ 0 ] |] in
  let comp = Scc.compute ~n:4 adj in
  check Alcotest.bool "cycle same comp" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check Alcotest.bool "3 separate" true (comp.(3) <> comp.(0));
  let g = Scc.groups comp in
  check Alcotest.int "two groups" 2 (Array.length g)

let scc_line () =
  (* A long path should not blow the stack and yields n components. *)
  let n = 50_000 in
  let adj = Array.init n (fun i -> if i + 1 < n then [ i + 1 ] else []) in
  let comp = Scc.compute ~n adj in
  let k = Array.fold_left (fun m c -> max m (c + 1)) 0 comp in
  check Alcotest.int "n components" n k

(* --- L3 topology --- *)

let mini_configs () =
  let c1, _ =
    Parse.parse_config
      "hostname r1\ninterface e1\n ip address 10.0.12.1 255.255.255.252\ninterface e2\n ip address 10.0.13.1 255.255.255.252\n"
  in
  let c2, _ =
    Parse.parse_config
      "hostname r2\ninterface e1\n ip address 10.0.12.2 255.255.255.252\n"
  in
  let c3, _ =
    Parse.parse_config
      "hostname r3\ninterface e1\n ip address 10.0.13.2 255.255.255.252\ninterface e9\n shutdown\n ip address 10.0.99.1 255.255.255.0\n"
  in
  [ c1; c2; c3 ]

let l3_units () =
  let topo = L3.infer (mini_configs ()) in
  check Alcotest.int "nodes" 3 (List.length (L3.nodes topo));
  let nbrs = L3.neighbors topo ~node:"r1" ~iface:"e1" in
  check Alcotest.int "r1.e1 has one neighbor" 1 (List.length nbrs);
  check Alcotest.string "neighbor is r2" "r2" (List.hd nbrs).L3.ep_node;
  let edges = L3.node_edges topo in
  check Alcotest.int "two links" 2 (List.length edges);
  (* shutdown interface contributes nothing *)
  check Alcotest.bool "no owner for disabled" true
    (L3.owner_of_ip topo (Ipv4.of_string "10.0.99.1") = None);
  check Alcotest.bool "owner lookup" true
    (match L3.owner_of_ip topo (Ipv4.of_string "10.0.12.2") with
     | Some ep -> ep.L3.ep_node = "r2"
     | None -> false)

(* --- RIB --- *)

let rib_make () =
  Rib.create ~prefer:Cmp.main_prefer ~multipath_equal:Cmp.main_multipath_equal
    ~max_paths:4 ()

let p = Prefix.of_string

let rib_units () =
  let rib = rib_make () in
  let static1 =
    Route.static ~net:(p "10.0.0.0/8") ~nh:(Route.Nh_ip (Ipv4.of_string "1.1.1.1")) ~ad:1 ~tag:0
  in
  let ospf1 =
    Route.ospf ~proto:Route_proto.Ospf ~net:(p "10.0.0.0/8")
      ~nh:(Route.Nh_ip (Ipv4.of_string "2.2.2.2")) ~metric:20 ~area:0
  in
  Rib.merge rib ospf1;
  check Alcotest.int "ospf best" 1 (List.length (Rib.best rib (p "10.0.0.0/8")));
  Rib.merge rib static1;
  (* static has lower admin distance *)
  (match Rib.best rib (p "10.0.0.0/8") with
   | [ r ] -> check Alcotest.bool "static wins" true (r.Route.protocol = Route_proto.Static)
   | _ -> Alcotest.fail "expected single best");
  let added, removed = Rib.take_delta rib in
  (* net effect of the two merges: static added (ospf was added then replaced) *)
  check Alcotest.int "one added" 1 (List.length added);
  check Alcotest.int "none removed" 0 (List.length removed);
  Rib.withdraw rib static1;
  (match Rib.best rib (p "10.0.0.0/8") with
   | [ r ] -> check Alcotest.bool "ospf back" true (r.Route.protocol = Route_proto.Ospf)
   | _ -> Alcotest.fail "expected ospf");
  let added, removed = Rib.take_delta rib in
  check Alcotest.int "ospf added" 1 (List.length added);
  check Alcotest.int "static removed" 1 (List.length removed)

let rib_multipath () =
  let rib =
    Rib.create ~prefer:Cmp.ospf_prefer ~multipath_equal:Cmp.ospf_multipath_equal
      ~max_paths:4 ()
  in
  let r nh m =
    Route.ospf ~proto:Route_proto.Ospf ~net:(p "10.1.0.0/16")
      ~nh:(Route.Nh_ip (Ipv4.of_string nh)) ~metric:m ~area:0
  in
  Rib.merge rib (r "1.1.1.1" 10);
  Rib.merge rib (r "2.2.2.2" 10);
  Rib.merge rib (r "3.3.3.3" 20);
  check Alcotest.int "ecmp 2" 2 (List.length (Rib.best rib (p "10.1.0.0/16")));
  Rib.merge rib (r "4.4.4.4" 5);
  (match Rib.best rib (p "10.1.0.0/16") with
   | [ best ] ->
     check Alcotest.bool "lower metric wins" true
       (Route.next_hop_ip best = Some (Ipv4.of_string "4.4.4.4"))
   | _ -> Alcotest.fail "expected one best");
  check Alcotest.int "candidates retained" 4
    (List.length (Rib.candidates rib))

let rib_lpm () =
  let rib = rib_make () in
  let add net =
    Rib.merge rib (Route.static ~net:(p net) ~nh:Route.Nh_discard ~ad:1 ~tag:0)
  in
  add "10.0.0.0/8";
  add "10.1.0.0/16";
  add "0.0.0.0/0";
  (match Rib.lookup rib (Ipv4.of_string "10.1.2.3") with
   | Some (pfx, _) -> check Alcotest.string "lpm /16" "10.1.0.0/16" (Prefix.to_string pfx)
   | None -> Alcotest.fail "expected match");
  (match Rib.lookup rib (Ipv4.of_string "192.168.1.1") with
   | Some (pfx, _) -> check Alcotest.string "default" "0.0.0.0/0" (Prefix.to_string pfx)
   | None -> Alcotest.fail "expected default")

let delta_cancellation () =
  let rib = rib_make () in
  let r = Route.static ~net:(p "10.0.0.0/8") ~nh:Route.Nh_discard ~ad:1 ~tag:0 in
  Rib.merge rib r;
  Rib.withdraw rib r;
  let added, removed = Rib.take_delta rib in
  check Alcotest.int "no net adds" 0 (List.length added);
  check Alcotest.int "no net removes" 0 (List.length removed);
  check Alcotest.bool "not dirty" false (Rib.dirty rib)

(* --- BGP decision process --- *)

let mk_bgp ?(proto = Route_proto.Ebgp) ?(lp = 100) ?(path = [ 65002 ]) ?(med = 0)
    ?(weight = 0) ?(arrival = 0) ?(peer = "9.9.9.1") ?(rid = "9.9.9.1") ?(origin = Vi.Origin_igp) () =
  Route.bgp ~proto ~net:(p "10.0.0.0/8")
    ~nh:(Route.Nh_ip (Ipv4.of_string "9.9.9.9"))
    ~attrs:(Attrs.make ~local_pref:lp ~as_path:path ~med ~weight ~origin ())
    ~arrival ~from_peer:(Ipv4.of_string peer) ~from_rid:(Ipv4.of_string rid)

let no_igp _ = Some 0

let bgp_decision () =
  let cmp = Cmp.bgp_prefer ~igp_cost:no_igp in
  let better a b = cmp a b < 0 in
  check Alcotest.bool "weight" true
    (better (mk_bgp ~weight:100 ()) (mk_bgp ~lp:999 ()));
  check Alcotest.bool "local pref" true (better (mk_bgp ~lp:200 ()) (mk_bgp ~lp:100 ()));
  check Alcotest.bool "as path" true
    (better (mk_bgp ~path:[ 65002 ] ()) (mk_bgp ~path:[ 65002; 65003 ] ()));
  check Alcotest.bool "origin" true
    (better (mk_bgp ~origin:Vi.Origin_igp ()) (mk_bgp ~origin:Vi.Origin_incomplete ()));
  check Alcotest.bool "med" true (better (mk_bgp ~med:10 ()) (mk_bgp ~med:20 ()));
  check Alcotest.bool "ebgp over ibgp" true
    (better (mk_bgp ~proto:Route_proto.Ebgp ()) (mk_bgp ~proto:Route_proto.Ibgp ()));
  (* the logical clock: older route preferred *)
  check Alcotest.bool "older wins" true
    (better (mk_bgp ~arrival:1 ~rid:"9.9.9.2" ()) (mk_bgp ~arrival:2 ()));
  (* without arrival, falls to router id *)
  let cmp_noclock = Cmp.bgp_prefer ~use_arrival:false ~igp_cost:no_igp in
  check Alcotest.bool "rid tiebreak" true
    (cmp_noclock (mk_bgp ~arrival:2 ~rid:"1.1.1.1" ()) (mk_bgp ~arrival:1 ~rid:"2.2.2.2" ()) < 0)

let bgp_total_order =
  qtest "bgp comparator antisymmetric"
    QCheck.(
      pair
        (quad (int_bound 300) (int_bound 3) (int_bound 50) (int_bound 2))
        (quad (int_bound 300) (int_bound 3) (int_bound 50) (int_bound 2)))
    (fun ((lp1, pl1, med1, ar1), (lp2, pl2, med2, ar2)) ->
      let r1 = mk_bgp ~lp:lp1 ~path:(List.init pl1 (fun i -> 65000 + i)) ~med:med1 ~arrival:ar1 () in
      let r2 = mk_bgp ~lp:lp2 ~path:(List.init pl2 (fun i -> 65000 + i)) ~med:med2 ~arrival:ar2 () in
      let cmp = Cmp.bgp_prefer ~igp_cost:no_igp in
      compare (cmp r1 r2) 0 = compare 0 (cmp r2 r1))

(* --- Attrs interning --- *)

let interning () =
  Attrs.clear_pools ();
  let a = Attrs.make ~as_path:[ 65001; 65002 ] ~communities:[ 5; 3; 5 ] () in
  let b = Attrs.make ~as_path:[ 65001; 65002 ] ~communities:[ 3; 5 ] () in
  check Alcotest.bool "interned equal" true (a == b);
  check Alcotest.bool "communities sorted" true (a.Attrs.communities = [ 3; 5 ]);
  let distinct, requests = Attrs.pool_stats () in
  check Alcotest.int "one distinct" 1 distinct;
  check Alcotest.bool "two requests" true (requests >= 2);
  let c = Attrs.update ~local_pref:200 a in
  check Alcotest.bool "update differs" true (not (Attrs.equal a c))

(* --- Policy evaluation --- *)

let policy_cfg () =
  let text =
    String.concat "\n"
      [ "hostname r1";
        "ip prefix-list TENS seq 5 permit 10.0.0.0/8 le 24";
        "ip prefix-list EXACT seq 5 permit 192.168.0.0/16";
        "ip community-list standard CL permit 65001:100";
        "ip as-path access-list AP permit _65002_";
        "route-map POL permit 10";
        " match ip address prefix-list TENS";
        " set local-preference 250";
        " set community 65001:999 additive";
        "route-map POL deny 20";
        "route-map AS_FILTER permit 10";
        " match as-path AP";
        "route-map COMM permit 10";
        " match community CL";
        " set metric 55" ]
  in
  fst (Parse.parse_config text)

let policy_eval () =
  let ctx = Policy_eval.make_ctx (policy_cfg ()) in
  let r net =
    mk_bgp () |> fun r -> { r with Route.net = p net }
  in
  (match Policy_eval.run_named ctx "POL" (r "10.1.1.0/24") with
   | Policy_eval.Accepted r' ->
     check Alcotest.int "lp set" 250 (Route.get_attrs r').Attrs.local_pref;
     check Alcotest.bool "community added" true
       (List.mem (Vi.community 65001 999) (Route.get_attrs r').Attrs.communities)
   | Policy_eval.Denied -> Alcotest.fail "expected accept");
  (match Policy_eval.run_named ctx "POL" (r "10.1.1.0/28") with
   | Policy_eval.Denied -> ()
   | Policy_eval.Accepted _ -> Alcotest.fail "le 24 should reject /28");
  (match Policy_eval.run_named ctx "POL" (r "192.168.0.0/16") with
   | Policy_eval.Denied -> ()
   | Policy_eval.Accepted _ -> Alcotest.fail "non-matching prefix should be denied")

let policy_as_path () =
  let ctx = Policy_eval.make_ctx (policy_cfg ()) in
  let with_path path = mk_bgp ~path () in
  (match Policy_eval.run_named ctx "AS_FILTER" (with_path [ 65001; 65002; 65003 ]) with
   | Policy_eval.Accepted _ -> ()
   | Policy_eval.Denied -> Alcotest.fail "65002 in path should match");
  (match Policy_eval.run_named ctx "AS_FILTER" (with_path [ 65001; 650022 ]) with
   | Policy_eval.Denied -> ()
   | Policy_eval.Accepted _ -> Alcotest.fail "650022 should not match _65002_")

let policy_community () =
  let ctx = Policy_eval.make_ctx (policy_cfg ()) in
  let with_comm cs =
    { (mk_bgp ()) with
      Route.attrs = Some (Attrs.make ~communities:cs ()) }
  in
  (match Policy_eval.run_named ctx "COMM" (with_comm [ Vi.community 65001 100 ]) with
   | Policy_eval.Accepted r -> check Alcotest.int "metric set" 55 r.Route.metric
   | Policy_eval.Denied -> Alcotest.fail "community should match");
  (match Policy_eval.run_named ctx "COMM" (with_comm [ Vi.community 65001 101 ]) with
   | Policy_eval.Denied -> ()
   | Policy_eval.Accepted _ -> Alcotest.fail "wrong community should not match")

let policy_undefined_semantics () =
  let mk vendor =
    let cfg = Vi.empty "r1" vendor in
    Policy_eval.make_ctx cfg
  in
  let r = mk_bgp () in
  (match Policy_eval.run_named (mk "cisco-ios") "MISSING" r with
   | Policy_eval.Denied -> ()
   | Policy_eval.Accepted _ -> Alcotest.fail "ios: undefined map denies");
  (match Policy_eval.run_named (mk "arista-eos") "MISSING" r with
   | Policy_eval.Accepted _ -> ()
   | Policy_eval.Denied -> Alcotest.fail "eos: undefined map permits")

(* --- ACL evaluation --- *)

let acl_eval () =
  let cfg, _ =
    Parse.parse_config
      (String.concat "\n"
         [ "hostname r1";
           "ip access-list extended T";
           " 10 permit tcp 10.0.0.0 0.255.255.255 any eq 443";
           " 20 deny tcp any any";
           " 30 permit ip any any" ])
  in
  let acl = Option.get (Vi.find_acl cfg "T") in
  let https =
    Packet.tcp ~src:(Ipv4.of_string "10.1.1.1") ~dst:(Ipv4.of_string "8.8.8.8") 443
  in
  check Alcotest.bool "https allowed" true (Acl_eval.permits acl https);
  let http =
    Packet.tcp ~src:(Ipv4.of_string "10.1.1.1") ~dst:(Ipv4.of_string "8.8.8.8") 80
  in
  check Alcotest.bool "http denied" false (Acl_eval.permits acl http);
  let udp =
    Packet.udp ~src:(Ipv4.of_string "172.16.1.1") ~dst:(Ipv4.of_string "8.8.8.8") 53
  in
  check Alcotest.bool "udp allowed by 30" true (Acl_eval.permits acl udp);
  let outside_https =
    Packet.tcp ~src:(Ipv4.of_string "172.16.1.1") ~dst:(Ipv4.of_string "8.8.8.8") 443
  in
  check Alcotest.bool "non-10 https denied" false (Acl_eval.permits acl outside_https)

let suites =
  [ ( "topology",
      [ Alcotest.test_case "coloring units" `Quick coloring_units;
        coloring_valid; coloring_deterministic;
        Alcotest.test_case "scc units" `Quick scc_units;
        Alcotest.test_case "scc long path" `Quick scc_line;
        Alcotest.test_case "l3 inference" `Quick l3_units ] );
    ( "rib",
      [ Alcotest.test_case "admin distance" `Quick rib_units;
        Alcotest.test_case "multipath" `Quick rib_multipath;
        Alcotest.test_case "lpm" `Quick rib_lpm;
        Alcotest.test_case "delta cancellation" `Quick delta_cancellation ] );
    ( "bgp.decision",
      [ Alcotest.test_case "steps" `Quick bgp_decision; bgp_total_order;
        Alcotest.test_case "interning" `Quick interning ] );
    ( "policy",
      [ Alcotest.test_case "route-map" `Quick policy_eval;
        Alcotest.test_case "as-path regex" `Quick policy_as_path;
        Alcotest.test_case "community" `Quick policy_community;
        Alcotest.test_case "undefined semantics" `Quick policy_undefined_semantics;
        Alcotest.test_case "acl" `Quick acl_eval ] ) ]
