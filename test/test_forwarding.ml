(* BDD forwarding engine tests: the Figure 2 scenario, query semantics,
   NAT/zones/waypoints/bidirectional, loop detection, compression, and the
   differential engine testing of §4.3.2 (BDD engine vs traceroute, both
   directions). *)

let check = Alcotest.check

let build texts =
  let configs = List.map (fun t -> fst (Parse.parse_config (String.concat "\n" t))) texts in
  let dp = Dataplane.compute configs in
  let find name = List.find_opt (fun (c : Vi.t) -> c.hostname = name) configs in
  (configs, dp, find)

let fq ?compress (_, dp, find) = Fquery.make ?compress ~configs:find ~dp ()

(* The Figure 2 network: R1 with hosts behind i0, R2 owning P1, R3 owning P3
   behind an ssh-only ACL on R1's egress. *)
let fig2 () =
  build
    [ [ "hostname r1";
        "interface i0"; " ip address 10.0.0.1 255.255.255.0"; (* hosts *)
        "interface i1"; " ip address 10.0.12.1 255.255.255.252";
        "interface i3"; " ip address 10.0.13.1 255.255.255.252";
        " ip access-group SSH_ONLY out";
        "ip access-list extended SSH_ONLY";
        " 10 permit tcp any any eq 22";
        " 20 deny ip any any";
        "ip route 10.0.1.0 255.255.255.0 10.0.12.2";
        "ip route 10.0.3.0 255.255.255.0 10.0.13.2" ];
      [ "hostname r2";
        "interface i1"; " ip address 10.0.12.2 255.255.255.252";
        "interface p1"; " ip address 10.0.1.1 255.255.255.0" ];
      [ "hostname r3";
        "interface i3"; " ip address 10.0.13.2 255.255.255.252";
        "interface p3"; " ip address 10.0.3.1 255.255.255.0" ] ]

let ip = Ipv4.of_string
let pfx = Prefix.of_string

let fig2_reachability () =
  let net = fig2 () in
  let q = fq net in
  let e = Fquery.env q in
  let man = Pktset.man e in
  (* all TCP packets entering r1.i0 destined to P1 are delivered *)
  let tcp = Pktset.value e Field.Protocol Packet.Proto.tcp in
  let to_p1 =
    Fquery.reachable q ~src:("r1", Some "i0") ~hdr:tcp ~dst_ip:(pfx "10.0.1.0/24") ()
  in
  let all_tcp_p1 =
    Bdd.conj man [ tcp; Pktset.dst_prefix e (pfx "10.0.1.0/24"); Fquery.clean q ]
  in
  check Alcotest.bool "all tcp to P1 delivered" true (Bdd.equal to_p1 all_tcp_p1);
  (* to P3 only ssh makes it *)
  let to_p3 =
    Fquery.reachable q ~src:("r1", Some "i0") ~hdr:tcp ~dst_ip:(pfx "10.0.3.0/24") ()
  in
  let ssh = Pktset.range e Field.Dst_port 22 22 in
  check Alcotest.bool "only ssh reaches P3" true
    (Bdd.is_bot (Bdd.bdiff man to_p3 ssh));
  check Alcotest.bool "ssh does reach P3" false (Bdd.is_bot to_p3);
  (* example extraction: a violating packet (non-ssh to P3) with a positive
     contrast (ssh) *)
  let want =
    Bdd.conj man [ tcp; Pktset.dst_prefix e (pfx "10.0.3.0/24"); Fquery.clean q ]
  in
  let violating = Bdd.bdiff man want to_p3 in
  let neg, pos =
    Fquery.pick_examples q ~dst_prefix:(pfx "10.0.3.0/24") ~violating ~holding:want ()
  in
  (match neg with
   | Some p ->
     check Alcotest.bool "neg is not ssh" true (p.Packet.dst_port <> 22);
     check Alcotest.bool "neg dst in P3" true (Prefix.contains (pfx "10.0.3.0/24") p.Packet.dst_ip)
   | None -> Alcotest.fail "expected counterexample");
  (match pos with
   | Some p -> check Alcotest.int "pos is ssh" 22 p.Packet.dst_port
   | None -> Alcotest.fail "expected positive example")

(* --- differential engine testing (§4.3.2) --- *)

let packet_gen_for prefixes =
  QCheck.Gen.(
    let any_ip = map (fun i -> i land 0xFFFF_FFFF) (int_range 0 0xFFFF_FFFF) in
    let dst =
      oneof
        (any_ip
        :: List.map
             (fun p -> map (fun off -> Prefix.network p + (off land 0xFF)) (int_bound 255))
             prefixes)
    in
    map2
      (fun (s, d, sp, dp_) (proto, flags) ->
        { Packet.default with src_ip = s; dst_ip = d; src_port = sp; dst_port = dp_;
          protocol = proto; tcp_flags = flags })
      (quad any_ip dst (int_bound 65535) (int_bound 65535))
      (pair (QCheck.Gen.oneofl [ 1; 6; 17 ]) (int_bound 255)))

(* Direction 2 of §4.3.2: run the concrete engine on a packet, then check the
   symbolic engine agrees on the disposition. *)
let differential_network name texts starts prefixes =
  let ((_, dp, find) as net) = build texts in
  let q = fq net in
  let e = Fquery.env q in
  let deliver = Fquery.to_delivered q () in
  let drop = Fquery.to_dropped q () in
  let prop pkt =
    List.for_all
      (fun (node, iface) ->
        let traces = Traceroute.run ~configs:find ~dp ~start:node ~ingress:iface pkt in
        let delivered_t =
          List.exists (fun tr -> Traceroute.is_delivered tr.Traceroute.disposition) traces
        and dropped_t =
          List.exists
            (fun tr ->
              match tr.Traceroute.disposition with
              | Traceroute.Loop _ | Traceroute.Hop_limit_exceeded _ -> false
              | d -> not (Traceroute.is_delivered d))
            traces
        in
        match Fgraph.loc_id q.Fquery.g (Fgraph.Src (node, iface)) with
        | None -> true
        | Some id ->
          let in_deliver = Pktset.mem e deliver.(id) pkt in
          let in_drop = Pktset.mem e drop.(id) pkt in
          delivered_t = in_deliver && dropped_t = in_drop)
      starts
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name
       (QCheck.make ~print:Packet.to_string (packet_gen_for prefixes))
       prop)

let diff_ospf_bgp =
  differential_network "differential: ospf+bgp+acl network"
    [ [ "hostname r1";
        "interface hosts"; " ip address 10.1.0.1 255.255.0.0";
        "interface e12"; " ip address 10.0.12.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
        "interface e13"; " ip address 10.0.13.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
        "router ospf 1"; " maximum-paths 4"; " redistribute connected subnets" ];
      [ "hostname r2";
        "interface e12"; " ip address 10.0.12.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
        "interface e24"; " ip address 10.0.24.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
        "router ospf 1"; " maximum-paths 4" ];
      [ "hostname r3";
        "interface e13"; " ip address 10.0.13.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
        "interface e34"; " ip address 10.0.34.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 20";
        "router ospf 1"; " maximum-paths 4" ];
      [ "hostname r4";
        "interface e24"; " ip address 10.0.24.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
        "interface e34"; " ip address 10.0.34.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 20";
        "interface servers"; " ip address 10.4.0.1 255.255.0.0";
        " ip access-group PROTECT out";
        "ip access-list extended PROTECT";
        " 10 permit tcp any 10.4.0.0 0.0.255.255 eq 80";
        " 20 permit tcp any any established";
        " 30 permit icmp any any";
        " 40 deny ip any any";
        "router ospf 1"; " maximum-paths 4"; " redistribute connected subnets" ] ]
    [ ("r1", "hosts"); ("r4", "servers"); ("r2", "e12") ]
    [ pfx "10.1.0.0/16"; pfx "10.4.0.0/16"; pfx "10.0.12.0/30"; pfx "10.0.34.0/30" ]

(* Direction 1 of §4.3.2: pick representative packets from the symbolic
   answer and confirm them concretely. *)
let diff_direction1 () =
  let ((_, dp, find) as net) = fig2 () in
  let q = fq net in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let deliver = Fquery.to_delivered q () in
  let drop = Fquery.to_dropped q () in
  let starts = [ ("r1", "i0"); ("r2", "p1"); ("r3", "p3") ] in
  List.iter
    (fun (node, iface) ->
      match Fgraph.loc_id q.Fquery.g (Fgraph.Src (node, iface)) with
      | None -> Alcotest.failf "missing src loc %s %s" node iface
      | Some id ->
        let check_set set expect_delivered =
          let set = Bdd.band man set (Fquery.clean q) in
          match Pktset.to_packet e ~prefs:(Pktset.standard_prefs e ()) set with
          | None -> ()
          | Some pkt ->
            let traces = Traceroute.run ~configs:find ~dp ~start:node ~ingress:iface pkt in
            let delivered =
              List.exists (fun tr -> Traceroute.is_delivered tr.Traceroute.disposition) traces
            in
            if expect_delivered && not delivered then
              Alcotest.failf "symbolic says delivered, traceroute disagrees: %s at %s[%s]"
                (Packet.to_string pkt) node iface
            else if (not expect_delivered) && delivered then
              Alcotest.failf "symbolic says dropped, traceroute delivered: %s at %s[%s]"
                (Packet.to_string pkt) node iface
        in
        check_set (Bdd.bdiff man deliver.(id) drop.(id)) true;
        check_set (Bdd.bdiff man drop.(id) deliver.(id)) false)
    starts

(* --- multipath consistency --- *)

let multipath_consistency () =
  (* ECMP diamond where one path denies http: inconsistent *)
  let net =
    build
      [ [ "hostname a";
          "interface hosts"; " ip address 10.1.0.1 255.255.0.0";
          "interface e1"; " ip address 10.0.1.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          "interface e2"; " ip address 10.0.2.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          "router ospf 1"; " maximum-paths 4" ];
        [ "hostname b1";
          "interface e1"; " ip address 10.0.1.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          "interface e3"; " ip address 10.0.3.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          "router ospf 1"; " maximum-paths 4" ];
        [ "hostname b2";
          "interface e2"; " ip address 10.0.2.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          " ip access-group NO_HTTP in";
          "interface e4"; " ip address 10.0.4.1 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          "ip access-list extended NO_HTTP";
          " 10 deny tcp any any eq 80";
          " 20 permit ip any any";
          "router ospf 1"; " maximum-paths 4" ];
        [ "hostname c";
          "interface e3"; " ip address 10.0.3.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          "interface e4"; " ip address 10.0.4.2 255.255.255.252"; " ip ospf area 0"; " ip ospf cost 10";
          "interface servers"; " ip address 10.9.0.1 255.255.0.0";
          "router ospf 1"; " maximum-paths 4"; " redistribute connected subnets" ] ]
  in
  let q = fq net in
  let e = Fquery.env q in
  let violations = Fquery.multipath_consistency q () in
  check Alcotest.bool "violation found" true (violations <> []);
  let (_, v) = List.find (fun ((n, _), _) -> n = "a") violations in
  (match Pktset.to_packet e v with
   | Some p ->
     check Alcotest.int "violating flow is http" 80 p.Packet.dst_port
   | None -> Alcotest.fail "expected example");
  (* consistent network: no violations *)
  let clean_net = fig2 () in
  let q2 = fq clean_net in
  check Alcotest.int "consistent network" 0
    (List.length (Fquery.multipath_consistency q2 ()))

(* --- waypoint --- *)

let waypoint () =
  let net =
    build
      [ [ "hostname a";
          "interface hosts"; " ip address 10.1.0.1 255.255.0.0";
          "interface e1"; " ip address 10.0.1.1 255.255.255.252";
          "ip route 10.9.0.0 255.255.0.0 10.0.1.2" ];
        [ "hostname b";
          "interface e1"; " ip address 10.0.1.2 255.255.255.252";
          "interface e2"; " ip address 10.0.2.1 255.255.255.252";
          "ip route 10.9.0.0 255.255.0.0 10.0.2.2";
          "ip route 10.1.0.0 255.255.0.0 10.0.1.1" ];
        [ "hostname c";
          "interface e2"; " ip address 10.0.2.2 255.255.255.252";
          "interface servers"; " ip address 10.9.0.1 255.255.0.0";
          "ip route 10.1.0.0 255.255.0.0 10.0.2.1" ] ]
  in
  let q = fq net in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let hdr = Pktset.dst_prefix e (pfx "10.9.0.0/16") in
  let compliant, violating =
    Fquery.waypoint q ~src:("a", Some "hosts") ~dst_node:"c" ~waypoint:"b"
      ~mode:`Through ~hdr ()
  in
  check Alcotest.bool "all traffic goes through b" true (Bdd.is_bot violating);
  check Alcotest.bool "traffic exists" false (Bdd.is_bot compliant);
  let compliant2, violating2 =
    Fquery.waypoint q ~src:("a", Some "hosts") ~dst_node:"c" ~waypoint:"b"
      ~mode:`Avoid ~hdr ()
  in
  ignore man;
  check Alcotest.bool "avoid mode flips" true
    (Bdd.equal compliant violating2 && Bdd.equal violating compliant2)

(* --- zones and bidirectional reachability --- *)

let zones_bidirectional () =
  let net =
    build
      [ [ "hostname inside";
          "interface lan"; " ip address 10.1.0.1 255.255.0.0";
          "interface e1"; " ip address 10.0.1.1 255.255.255.252";
          "ip route 0.0.0.0 0.0.0.0 10.0.1.2" ];
        [ "hostname fw";
          "interface e1"; " ip address 10.0.1.2 255.255.255.252";
          " zone-member security TRUST";
          "interface e2"; " ip address 10.0.2.1 255.255.255.252";
          " zone-member security UNTRUST";
          "zone security TRUST";
          "zone security UNTRUST";
          "zone-pair security source TRUST destination UNTRUST acl OUTBOUND";
          "ip access-list extended OUTBOUND";
          " 10 permit tcp 10.1.0.0 0.0.255.255 any";
          " 20 deny ip any any";
          "ip route 10.1.0.0 255.255.0.0 10.0.1.1";
          "ip route 10.9.0.0 255.255.0.0 10.0.2.2" ];
        [ "hostname outside";
          "interface e2"; " ip address 10.0.2.2 255.255.255.252";
          "interface ext"; " ip address 10.9.0.1 255.255.0.0";
          "ip route 0.0.0.0 0.0.0.0 10.0.2.1" ] ]
  in
  let q = fq net in
  let e = Fquery.env q in
  let man = Pktset.man e in
  (* outbound tcp allowed *)
  let out_hdr =
    Bdd.conj man
      [ Pktset.value e Field.Protocol Packet.Proto.tcp;
        Pktset.src_prefix e (pfx "10.1.0.0/16");
        Pktset.dst_prefix e (pfx "10.9.0.0/16") ]
  in
  let delivered = Fquery.reachable q ~src:("inside", Some "lan") ~hdr:out_hdr () in
  check Alcotest.bool "outbound allowed" false (Bdd.is_bot delivered);
  (* inbound blocked by default deny across zones *)
  let in_hdr =
    Bdd.conj man
      [ Pktset.src_prefix e (pfx "10.9.0.0/16"); Pktset.dst_prefix e (pfx "10.1.0.0/16") ]
  in
  let inbound = Fquery.reachable q ~src:("outside", Some "ext") ~hdr:in_hdr () in
  check Alcotest.bool "inbound blocked" true (Bdd.is_bot inbound);
  (* but return traffic of established sessions makes the round trip *)
  let fwd, round_trip =
    Fquery.bidirectional q ~src:("inside", Some "lan") ~dst:("outside", "ext") ~hdr:out_hdr ()
  in
  check Alcotest.bool "forward delivered" false (Bdd.is_bot fwd);
  check Alcotest.bool "round trip works via session" false (Bdd.is_bot round_trip);
  (* traceroute agrees the plain inbound packet dies at the firewall *)
  let (_, dp, find) = net in
  let pkt = Packet.tcp ~src:(ip "10.9.5.5") ~dst:(ip "10.1.5.5") 80 in
  let traces = Traceroute.run ~configs:find ~dp ~start:"outside" ~ingress:"ext" pkt in
  check Alcotest.bool "traceroute: zone denied" true
    (List.for_all
       (fun tr ->
         match tr.Traceroute.disposition with
         | Traceroute.Denied_zone ("fw", _) -> true
         | _ -> false)
       traces)

(* --- NAT --- *)

let nat () =
  let net =
    build
      [ [ "hostname gw";
          "interface inside"; " ip address 10.1.0.1 255.255.0.0";
          "interface outside"; " ip address 203.0.113.1 255.255.255.252";
          "ip access-list extended PRIVATE";
          " 10 permit ip 10.1.0.0 0.0.255.255 any";
          "ip nat pool NATPOOL 198.51.100.1 198.51.100.254 prefix-length 24";
          "ip nat inside source list PRIVATE pool NATPOOL overload";
          "ip route 0.0.0.0 0.0.0.0 203.0.113.2" ];
        [ "hostname isp";
          "interface outside"; " ip address 203.0.113.2 255.255.255.252";
          "interface net"; " ip address 8.8.8.1 255.255.255.0";
          "ip route 198.51.100.0 255.255.255.0 203.0.113.1" ] ]
  in
  let q = fq net in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let hdr =
    Bdd.band man
      (Pktset.src_prefix e (pfx "10.1.0.0/16"))
      (Pktset.dst_prefix e (pfx "8.8.8.0/24"))
  in
  let sets = Fquery.forward_from q ~hdr [ ("gw", Some "inside") ] in
  (* at the ISP's delivery interface, sources must be NATed into the pool *)
  match Fgraph.loc_id q.Fquery.g (Fgraph.Dst ("isp", "net")) with
  | None -> Alcotest.fail "missing dst loc"
  | Some id ->
    let arrived = sets.(id) in
    check Alcotest.bool "traffic arrives" false (Bdd.is_bot arrived);
    check Alcotest.bool "sources rewritten into pool" true
      (Bdd.is_bot (Bdd.bdiff man arrived (Pktset.src_prefix e (pfx "198.51.100.0/24"))));
    (* traceroute agrees on the rewrite *)
    let (_, dp, find) = net in
    let pkt = Packet.tcp ~src:(ip "10.1.2.3") ~dst:(ip "8.8.8.8") 443 in
    let traces = Traceroute.run ~configs:find ~dp ~start:"gw" ~ingress:"inside" pkt in
    (match traces with
     | [ tr ] ->
       check Alcotest.bool "delivered" true (Traceroute.is_delivered tr.Traceroute.disposition);
       check Alcotest.bool "concrete src in pool" true
         (Prefix.contains (pfx "198.51.100.0/24") tr.Traceroute.final_packet.Packet.src_ip);
       check Alcotest.bool "symbolic contains concrete" true
         (Pktset.mem e arrived tr.Traceroute.final_packet)
     | _ -> Alcotest.fail "expected one trace")

(* --- loops --- *)

let loops () =
  let net =
    build
      [ [ "hostname a";
          "interface e1"; " ip address 10.0.1.1 255.255.255.252";
          "ip route 10.9.0.0 255.255.0.0 10.0.1.2" ];
        [ "hostname b";
          "interface e1"; " ip address 10.0.1.2 255.255.255.252";
          "ip route 10.9.0.0 255.255.0.0 10.0.1.1" ] ]
  in
  let q = fq net in
  let found = Fquery.find_loops q in
  check Alcotest.bool "loop found" true (found <> []);
  let nodes, set = List.hd found in
  check Alcotest.bool "loop involves a and b" true
    (List.mem "a" nodes && List.mem "b" nodes);
  let e = Fquery.env q in
  (match Pktset.to_packet e set with
   | Some p ->
     check Alcotest.bool "looping packet heads to 10.9/16" true
       (Prefix.contains (pfx "10.9.0.0/16") p.Packet.dst_ip);
     (* traceroute agrees *)
     let (_, dp, find) = net in
     let traces = Traceroute.run ~configs:find ~dp ~start:"a" p in
     check Alcotest.bool "traceroute loops" true
       (List.exists
          (fun tr ->
            match tr.Traceroute.disposition with
            | Traceroute.Loop _ -> true
            | _ -> false)
          traces)
   | None -> Alcotest.fail "expected looping packet");
  (* loop-free network *)
  let q2 = fq (fig2 ()) in
  check Alcotest.int "no loops in fig2" 0 (List.length (Fquery.find_loops q2))

(* --- compression ablation: identical answers --- *)

let compression_equivalence () =
  let net = fig2 () in
  let e = Pktset.create () in
  let (_, dp, find) = net in
  let q1 =
    Fquery.of_graph
      (Fgraph.build ~env:e ~compress:true ~configs:find ~dp ())
      ~dp ~configs:find
  in
  let q2 =
    Fquery.of_graph
      (Fgraph.build ~env:e ~compress:false ~configs:find ~dp ())
      ~dp ~configs:find
  in
  check Alcotest.bool "compression shrinks the graph" true
    (Fgraph.n_edges q1.Fquery.g <= Fgraph.n_edges q2.Fquery.g);
  let r1 = Fquery.reachable q1 ~src:("r1", Some "i0") ~dst_ip:(pfx "10.0.3.0/24") () in
  let r2 = Fquery.reachable q2 ~src:("r1", Some "i0") ~dst_ip:(pfx "10.0.3.0/24") () in
  check Alcotest.bool "same answer" true (Bdd.equal r1 r2);
  let m1 = Fquery.multipath_consistency q1 () in
  let m2 = Fquery.multipath_consistency q2 () in
  check Alcotest.int "same violations" (List.length m1) (List.length m2)

let suites =
  [ ( "forwarding.fig2",
      [ Alcotest.test_case "reachability + examples" `Quick fig2_reachability;
        Alcotest.test_case "compression equivalence" `Quick compression_equivalence ] );
    ( "forwarding.differential",
      [ diff_ospf_bgp; Alcotest.test_case "direction 1" `Quick diff_direction1 ] );
    ( "forwarding.queries",
      [ Alcotest.test_case "multipath consistency" `Quick multipath_consistency;
        Alcotest.test_case "waypoint" `Quick waypoint;
        Alcotest.test_case "zones + bidirectional" `Quick zones_bidirectional;
        Alcotest.test_case "nat" `Quick nat;
        Alcotest.test_case "loops" `Quick loops ] ) ]
