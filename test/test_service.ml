(* Analysis-as-a-service daemon (ISSUE 9): protocol correctness, snapshot
   dedup, in-flight coalescing, malformed-request isolation, concurrent
   clients over a real Unix socket, clean shutdown mid-request, and the
   Par.Pool shutdown races the daemon leans on. The service must answer
   byte-identically to the one-shot CLI path (same engine, same renderer),
   and a bad request must never take the daemon down. *)

let check = Alcotest.check

(* --- Sjson: the hand-rolled protocol codec ------------------------------ *)

let rec json_equal a b =
  match (a, b) with
  | Sjson.Null, Sjson.Null -> true
  | Sjson.Bool x, Sjson.Bool y -> x = y
  | Sjson.Int x, Sjson.Int y -> x = y
  | Sjson.Float x, Sjson.Float y -> x = y
  | Sjson.Str x, Sjson.Str y -> x = y
  | Sjson.Arr xs, Sjson.Arr ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Sjson.Obj xs, Sjson.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
         xs ys
  | _ -> false

let sjson_roundtrip () =
  let v =
    Sjson.Obj
      [ ("method", Sjson.Str "load");
        ("id", Sjson.Int 42);
        ("pi", Sjson.Float 3.5);
        ("flags", Sjson.Arr [ Sjson.Bool true; Sjson.Bool false; Sjson.Null ]);
        ("text", Sjson.Str "line1\nline2\t\"quoted\" \\ \x01");
        ("nested", Sjson.Obj [ ("empty_arr", Sjson.Arr []); ("empty_obj", Sjson.Obj []) ]) ]
  in
  match Sjson.parse (Sjson.to_string v) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok v' -> check Alcotest.bool "round-trip equal" true (json_equal v v')

let sjson_parse_forms () =
  let ok s = match Sjson.parse s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e in
  check Alcotest.bool "unicode escape" true
    (json_equal (ok {|"Aé"|}) (Sjson.Str "A\xc3\xa9"));
  check Alcotest.bool "negative int" true (json_equal (ok "-17") (Sjson.Int (-17)));
  check Alcotest.bool "exponent is float" true (json_equal (ok "1e3") (Sjson.Float 1000.));
  check Alcotest.bool "whitespace tolerated" true
    (json_equal (ok " { \"a\" : [ 1 , 2 ] } ") (Sjson.Obj [ ("a", Sjson.Arr [ Sjson.Int 1; Sjson.Int 2 ]) ]))

let sjson_parse_errors () =
  List.iter
    (fun s ->
      match Sjson.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 trailing"; "{\"a\" 1}" ]

(* --- protocol helpers --------------------------------------------------- *)

let fixture_files =
  (* deterministic small clos fabric; parsed by the service from raw text,
     exactly as a client would send it *)
  let net = Netgen.clos ~name:"tsvc" ~spines:2 ~leaves:3 () in
  net.Netgen.n_configs

let request ?id ?params meth =
  let fields =
    [ ("method", Sjson.Str meth) ]
    @ (match id with Some i -> [ ("id", Sjson.Int i) ] | None -> [])
    @ match params with Some p -> [ ("params", Sjson.Obj p) ] | None -> []
  in
  Sjson.to_string (Sjson.Obj fields)

let load_params files = [ ("files", Sjson.Obj (List.map (fun (n, t) -> (n, Sjson.Str t)) files)) ]

let parse_resp line =
  match Sjson.parse line with
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e line
  | Ok v -> v

let resp_ok line =
  match Option.bind (Sjson.member "ok" (parse_resp line)) Sjson.get_bool with
  | Some b -> b
  | None -> Alcotest.failf "response missing ok: %s" line

let resp_field line name = Sjson.member name (parse_resp line)

(* --- handle_line: envelope, dedup, isolation ---------------------------- *)

let service_ping_envelope () =
  let t = Service.create ~domains:1 () in
  let r = Service.handle_line t (request ~id:7 "ping") in
  check Alcotest.bool "ok" true (resp_ok r);
  check Alcotest.bool "id echoed" true
    (match resp_field r "id" with Some (Sjson.Int 7) -> true | _ -> false);
  check Alcotest.bool "pong" true
    (match resp_field r "result" with Some (Sjson.Str "pong") -> true | _ -> false)

let service_load_dedup () =
  let t = Service.create ~domains:1 () in
  let line = request "load" ~params:(load_params fixture_files) in
  let r1 = Service.handle_line t line in
  let r2 = Service.handle_line t line in
  check Alcotest.bool "first load ok" true (resp_ok r1);
  check Alcotest.bool "second load ok" true (resp_ok r2);
  let reused r =
    match Option.bind (resp_field r "result") (Sjson.member "reused") with
    | Some (Sjson.Bool b) -> b
    | _ -> Alcotest.failf "load result missing reused: %s" r
  in
  check Alcotest.bool "first load is fresh" false (reused r1);
  check Alcotest.bool "second load reuses the snapshot" true (reused r2);
  let fp r =
    match Option.bind (resp_field r "result") (Sjson.member "fingerprint") with
    | Some (Sjson.Str s) -> s
    | _ -> Alcotest.failf "load result missing fingerprint: %s" r
  in
  check Alcotest.string "same fingerprint" (fp r1) (fp r2);
  let s = Service.stats t in
  check Alcotest.int "one live snapshot" 1 s.Service.st_snapshots;
  check Alcotest.int "one dedup hit" 1 s.Service.st_dedup_hits

let service_lru_eviction () =
  (* capacity 2: loading a third snapshot must evict the least recently
     used one (the first — the second is touched by a query in between),
     and the eviction must show up in stats *)
  let t = Service.create ~domains:1 ~max_snapshots:2 () in
  let snap i =
    (Netgen.clos ~name:(Printf.sprintf "lru%d" i) ~spines:2 ~leaves:2 ())
      .Netgen.n_configs
  in
  let fp1 = Service.load_files ~warm:false t (snap 1) in
  let fp2 = Service.load_files ~warm:false t (snap 2) in
  (* touch snapshot 1 so snapshot 2 is the LRU victim *)
  check Alcotest.bool "query on fp1 ok" true
    (resp_ok
       (Service.handle_line t
          (request "query"
             ~params:
               [ ("snapshot", Sjson.Str fp1); ("question", Sjson.Str "routes") ])));
  let fp3 = Service.load_files ~warm:false t (snap 3) in
  let s = Service.stats t in
  check Alcotest.int "two snapshots live" 2 s.Service.st_snapshots;
  check Alcotest.int "one eviction" 1 s.Service.st_evictions;
  (* fp2 was evicted: addressing it now is an error; fp1 and fp3 answer *)
  let query fp =
    resp_ok
      (Service.handle_line t
         (request "query"
            ~params:
              [ ("snapshot", Sjson.Str fp); ("question", Sjson.Str "routes") ]))
  in
  check Alcotest.bool "evicted snapshot unknown" false (query fp2);
  check Alcotest.bool "kept snapshot answers" true (query fp1);
  check Alcotest.bool "new snapshot answers" true (query fp3);
  (* re-loading the evicted snapshot re-registers it (and evicts another) *)
  let fp2' = Service.load_files ~warm:false t (snap 2) in
  check Alcotest.string "same content, same fingerprint" fp2 fp2';
  check Alcotest.int "still at capacity" 2 (Service.stats t).Service.st_snapshots;
  check Alcotest.int "second eviction" 2 (Service.stats t).Service.st_evictions

let service_answers_identical_serial_vs_pooled () =
  (* byte-identity across admission plans: a pooled service and a serial
     service must render identical answers for the same snapshot *)
  let serial = Service.create ~domains:1 () in
  let pooled = Service.create ~domains:4 () in
  let load = request "load" ~params:(load_params fixture_files) in
  check Alcotest.bool "serial load ok" true (resp_ok (Service.handle_line serial load));
  check Alcotest.bool "pooled load ok" true (resp_ok (Service.handle_line pooled load));
  List.iter
    (fun question ->
      let q = request "query" ~params:[ ("question", Sjson.Str question) ] in
      let rs = Service.handle_line serial q and rp = Service.handle_line pooled q in
      check Alcotest.bool (question ^ " serial ok") true (resp_ok rs);
      check Alcotest.bool (question ^ " pooled ok") true (resp_ok rp);
      let answers r =
        match Option.bind (resp_field r "result") (Sjson.member "answers") with
        | Some a -> a
        | None -> Alcotest.failf "%s: result missing answers: %s" question r
      in
      check Alcotest.bool (question ^ " answers identical") true
        (json_equal (answers rs) (answers rp)))
    [ "all_pairs"; "multipath"; "lint"; "coverage"; "loops" ]

let service_malformed_isolation () =
  let t = Service.create ~domains:1 () in
  let bad =
    [ "this is not json";
      "{\"params\":{}}" (* missing method *);
      request "frobnicate" (* unknown method *);
      request "query" ~params:[ ("question", Sjson.Str "all_pairs") ]
      (* query before any load *);
      request "load" ~params:[ ("files", Sjson.Str "not-an-object") ] ]
  in
  List.iter
    (fun line ->
      let r = Service.handle_line t line in
      check Alcotest.bool ("rejected: " ^ line) false (resp_ok r);
      check Alcotest.bool "has error string" true
        (match resp_field r "error" with Some (Sjson.Str _) -> true | _ -> false))
    bad;
  (* the daemon survives: a well-formed request right after still works *)
  check Alcotest.bool "ping after garbage" true (resp_ok (Service.handle_line t (request "ping")));
  let s = Service.stats t in
  check Alcotest.int "errors counted" (List.length bad) s.Service.st_errors;
  (* an unknown question on a live snapshot is isolated the same way *)
  check Alcotest.bool "load ok" true
    (resp_ok (Service.handle_line t (request "load" ~params:(load_params fixture_files))));
  check Alcotest.bool "unknown question rejected" false
    (resp_ok (Service.handle_line t (request "query" ~params:[ ("question", Sjson.Str "nope") ])));
  check Alcotest.bool "query after rejection ok" true
    (resp_ok (Service.handle_line t (request "query" ~params:[ ("question", Sjson.Str "multipath") ])))

(* --- coalescing --------------------------------------------------------- *)

let service_coalescing () =
  let t = Service.create ~domains:1 () in
  check Alcotest.bool "load ok" true
    (resp_ok (Service.handle_line t (request "load" ~params:(load_params fixture_files))));
  let q = request "query" ~params:[ ("question", Sjson.Str "loops") ] in
  let racers = 4 in
  let results = Array.make racers "" in
  Service.test_delay := 0.05;
  Fun.protect
    ~finally:(fun () -> Service.test_delay := 0.)
    (fun () ->
      let threads =
        List.init racers (fun i ->
            Thread.create (fun () -> results.(i) <- Service.handle_line t q) ())
      in
      List.iter Thread.join threads);
  Array.iter (fun r -> check Alcotest.bool "racer ok" true (resp_ok r)) results;
  (* all racers share one rendered result fragment *)
  let frag r = Sjson.to_string (Option.get (resp_field r "result")) in
  Array.iter
    (fun r -> check Alcotest.string "shared result" (frag results.(0)) (frag r))
    results;
  let s = Service.stats t in
  check Alcotest.bool "at least one racer coalesced" true (s.Service.st_coalesced >= 1);
  check Alcotest.bool "fewer computations than racers" true
    (s.Service.st_computed < racers + 1);
  let coalesced r =
    match Option.bind (resp_field r "meta") (Sjson.member "coalesced") with
    | Some (Sjson.Bool b) -> b
    | _ -> false
  in
  check Alcotest.bool "meta.coalesced marks a follower" true
    (Array.exists coalesced results)

let engine_memo_no_recompute () =
  (* the layer under coalescing: a repeated identical question hits the
     engine's query memo instead of recomputing the fixpoint *)
  let snap = Batfish.Snapshot.of_texts fixture_files in
  let bf = Batfish.init snap in
  ignore (Batfish.answer_multipath_consistency bf);
  let hits1, misses1 = Option.get (Batfish.memo_stats bf) in
  ignore (Batfish.answer_multipath_consistency bf);
  let hits2, misses2 = Option.get (Batfish.memo_stats bf) in
  check Alcotest.int "no new memo misses on repeat" misses1 misses2;
  check Alcotest.bool "repeat served from memo" true (hits2 > hits1)

(* --- a real daemon over a Unix socket ----------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "bf_test_svc" ".sock" in
  Sys.remove path;
  path

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send_request oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let rpc (_, ic, oc) line =
  send_request oc line;
  input_line ic

let wait_for_socket path =
  let rec wait n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.01;
      wait (n - 1)
    end
  in
  wait 500

let with_server ?(domains = 2) f =
  let t = Service.create ~domains () in
  let socket = temp_socket () in
  let server = Thread.create (fun () -> Service.serve ~install_signals:false ~socket t) () in
  wait_for_socket socket;
  Fun.protect
    ~finally:(fun () ->
      Service.stop t;
      Thread.join server)
    (fun () -> f t socket);
  (socket, Service.stats t)

let service_socket_concurrent_clients () =
  let socket, stats =
    with_server (fun _t socket ->
        let clients = 3 in
        let errs = Array.make clients None in
        let threads =
          List.init clients (fun i ->
              Thread.create
                (fun () ->
                  try
                    let c = connect socket in
                    let load = rpc c (request "load" ~params:(load_params fixture_files)) in
                    if not (resp_ok load) then failwith ("load failed: " ^ load);
                    let q =
                      rpc c (request ~id:i "query" ~params:[ ("question", Sjson.Str "multipath") ])
                    in
                    if not (resp_ok q) then failwith ("query failed: " ^ q);
                    (match resp_field q "id" with
                    | Some (Sjson.Int j) when j = i -> ()
                    | _ -> failwith ("wrong id echoed: " ^ q));
                    let fd, _, _ = c in
                    Unix.close fd
                  with exn -> errs.(i) <- Some (Printexc.to_string exn))
                ())
        in
        List.iter Thread.join threads;
        Array.iter
          (function None -> () | Some e -> Alcotest.failf "client failed: %s" e)
          errs)
  in
  (* all three clients loaded byte-identical configs: one snapshot, deduped *)
  check Alcotest.int "one snapshot across clients" 1 stats.Service.st_snapshots;
  check Alcotest.int "later clients dedup" 2 stats.Service.st_dedup_hits;
  check Alcotest.int "no protocol errors" 0 stats.Service.st_errors;
  check Alcotest.bool "socket unlinked after serve" false (Sys.file_exists socket)

let service_shutdown_mid_request () =
  (* stop() while a query is in flight: the request still gets its full
     response, serve returns after the drain, and the pool is shut down
     exactly once *)
  let socket, stats =
    with_server (fun t socket ->
        let c = connect socket in
        check Alcotest.bool "load ok" true
          (resp_ok (rpc c (request "load" ~params:(load_params fixture_files))));
        Service.test_delay := 0.2;
        Fun.protect
          ~finally:(fun () -> Service.test_delay := 0.)
          (fun () ->
            let _, _, oc = c in
            send_request oc (request "query" ~params:[ ("question", Sjson.Str "loops") ]);
            Thread.delay 0.05;
            Service.stop t;
            (* the in-flight response must still arrive, complete *)
            let _, ic, _ = c in
            let r = input_line ic in
            check Alcotest.bool "in-flight query answered after stop" true (resp_ok r));
        let fd, _, _ = c in
        Unix.close fd)
  in
  ignore socket;
  check Alcotest.int "pool shut down exactly once" 1 stats.Service.st_shutdowns_run

let service_protocol_shutdown () =
  let _, stats =
    with_server (fun _t socket ->
        let c = connect socket in
        check Alcotest.bool "shutdown acked" true (resp_ok (rpc c (request "shutdown")));
        let fd, _, _ = c in
        Unix.close fd)
  in
  check Alcotest.int "pool shut down exactly once" 1 stats.Service.st_shutdowns_run

(* --- Par.Pool: the shutdown races the daemon depends on ----------------- *)

let pool_shutdown_drains_inflight_job () =
  let p = Par.Pool.create ~domains:3 () in
  let job_result = ref [||] in
  let runner =
    Thread.create
      (fun () ->
        job_result :=
          Par.Pool.run p
            ~init:(fun () -> ())
            (fun () x ->
              Thread.delay 0.02;
              x * x)
            (Array.init 9 (fun i -> i)))
      ()
  in
  Thread.delay 0.03;
  (* shutdown racing the in-flight run: the published job must drain, the
     submitter must not be stranded *)
  Par.Pool.shutdown p;
  Thread.join runner;
  check (Alcotest.array Alcotest.int) "racing job completed correctly"
    (Array.init 9 (fun i -> i * i))
    !job_result;
  check Alcotest.bool "pool closed" true (Par.Pool.closed p)

let pool_concurrent_double_shutdown () =
  let p = Par.Pool.create ~domains:3 () in
  ignore (Par.Pool.run p ~init:(fun () -> ()) (fun () x -> x + 1) [| 1; 2; 3 |]);
  let failures = Array.make 4 None in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            try Par.Pool.shutdown p
            with exn -> failures.(i) <- Some (Printexc.to_string exn))
          ())
  in
  List.iter Thread.join threads;
  Array.iter
    (function None -> () | Some e -> Alcotest.failf "concurrent shutdown raised: %s" e)
    failures;
  check Alcotest.bool "pool closed" true (Par.Pool.closed p);
  (* and once more for the idempotence of the sequential path *)
  Par.Pool.shutdown p

let pool_concurrent_submitters () =
  let p = Par.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown p)
    (fun () ->
      let n = 6 in
      let outputs = Array.make n [||] in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                outputs.(i) <-
                  Par.Pool.run p
                    ~init:(fun () -> i * 100)
                    (fun base x -> base + x)
                    (Array.init 20 (fun j -> j)))
              ())
      in
      List.iter Thread.join threads;
      List.iteri
        (fun i _ ->
          check (Alcotest.array Alcotest.int)
            (Printf.sprintf "submitter %d result" i)
            (Array.init 20 (fun j -> (i * 100) + j))
            outputs.(i))
        threads)

let suites =
  [ ( "sjson",
      [ Alcotest.test_case "value round-trip through to_string/parse" `Quick sjson_roundtrip;
        Alcotest.test_case "escapes, numbers, whitespace" `Quick sjson_parse_forms;
        Alcotest.test_case "malformed inputs are parse errors" `Quick sjson_parse_errors ] );
    ( "service",
      [ Alcotest.test_case "ping echoes id" `Quick service_ping_envelope;
        Alcotest.test_case "identical configs dedup to one snapshot" `Quick service_load_dedup;
        Alcotest.test_case "LRU eviction honors --max-snapshots" `Quick service_lru_eviction;
        Alcotest.test_case "answers identical, serial vs pooled" `Quick
          service_answers_identical_serial_vs_pooled;
        Alcotest.test_case "malformed requests never kill the daemon" `Quick
          service_malformed_isolation;
        Alcotest.test_case "overlapping identical queries coalesce" `Quick service_coalescing;
        Alcotest.test_case "repeated question served from engine memo" `Quick
          engine_memo_no_recompute;
        Alcotest.test_case "concurrent clients over a Unix socket" `Quick
          service_socket_concurrent_clients;
        Alcotest.test_case "stop drains an in-flight request" `Quick
          service_shutdown_mid_request;
        Alcotest.test_case "protocol shutdown stops the daemon" `Quick
          service_protocol_shutdown ] );
    ( "service_pool",
      [ Alcotest.test_case "shutdown drains a racing job" `Quick pool_shutdown_drains_inflight_job;
        Alcotest.test_case "concurrent shutdowns join each worker once" `Quick
          pool_concurrent_double_shutdown;
        Alcotest.test_case "concurrent submitters share one pool" `Quick
          pool_concurrent_submitters ] ) ]
