let () =
  Alcotest.run "batfish-caml"
    (Test_prim.suites @ Test_bdd.suites @ Test_symbolic.suites @ Test_config.suites @ Test_routing.suites @ Test_dataplane.suites @ Test_forwarding.suites @ Test_baselines.suites @ Test_system.suites @ Test_extra.suites @ Test_lint.suites @ Test_chaos.suites @ Test_parallel.suites @ Test_incremental.suites @ Test_failures.suites @ Test_coverage.suites @ Test_compress.suites @ Test_service.suites)
