(* Coverage engine tests: exact line attribution on a hand-built fixture,
   agreement with the lint dead-line passes, per-profile determinism
   (byte-identical JSON), 100% attribution on the shipped example snapshot,
   and the chaos property (coverage never raises, on anything). *)

let check = Alcotest.check

(* --- hand-built fixture with known covered/uncovered/dead lines --- *)

let r1_text =
  String.concat "\n"
    [ "hostname r1";  (* 1 *)
      "!";
      "interface Loopback0";  (* 3: covered *)
      " ip address 10.255.0.1 255.255.255.255";
      "!";
      "interface Ethernet1";  (* 6: covered *)
      " ip address 10.0.12.1 255.255.255.252";
      " ip access-group EDGE in";
      "!";
      "interface Ethernet2";  (* 10: dead (shutdown) *)
      " shutdown";
      "!";
      "ip access-list extended EDGE";
      " permit icmp any any";  (* 14: covered *)
      " permit icmp any any";  (* 15: dead (shadowed by 14) *)
      " deny ip any any";  (* 16: covered *)
      "!";
      "ip route 10.99.0.0 255.255.0.0 10.0.12.2";  (* 18: covered *)
      "!";
      "ip prefix-list PL seq 5 permit 10.0.0.0/8 ge 28 le 24";  (* 20: dead *)
      "ip prefix-list PL seq 10 permit 10.99.0.0/16";  (* 21: covered *)
      "!";
      "route-map RM permit 10";  (* 23: covered *)
      " match ip address prefix-list PL";
      "route-map RM permit 20";  (* 25: dead (subsumed by 10) *)
      " match ip address prefix-list PL";
      "!";
      "router bgp 65001";
      " neighbor 10.0.12.2 remote-as 65002";  (* 29: uncovered (no peer) *)
      " neighbor 10.0.12.2 route-map RM out"; "" ]

(* r2 needs an edge-facing interface (the loopback): default query starts
   are edge interfaces, and the return traffic they originate is what
   exercises r1's inbound ACL. *)
let r2_text =
  String.concat "\n"
    [ "hostname r2";  (* 1 *)
      "!";
      "interface Loopback0";  (* 3: covered *)
      " ip address 10.255.0.2 255.255.255.255";
      "!";
      "interface Ethernet1";  (* 6: covered *)
      " ip address 10.0.12.2 255.255.255.252"; "" ]

let fixture_session () =
  Batfish.init
    (Batfish.Snapshot.of_texts [ ("r1.cfg", r1_text); ("r2.cfg", r2_text) ])

let find_file r name =
  match
    List.find_opt (fun fc -> fc.Coverage.fc_file = name) r.Coverage.cov_files
  with
  | Some fc -> fc
  | None -> Alcotest.failf "no per-file rollup for %s" name

let fixture_exact () =
  let r = Batfish.coverage (fixture_session ()) in
  let r1 = find_file r "r1.cfg" in
  check Alcotest.(list int) "r1 covered" [ 3; 6; 14; 16; 18; 21; 23 ]
    r1.Coverage.fc_covered;
  check Alcotest.(list int) "r1 uncovered" [ 29 ] r1.Coverage.fc_uncovered;
  check Alcotest.(list int) "r1 dead" [ 10; 15; 20; 25 ] r1.Coverage.fc_dead;
  let r2 = find_file r "r2.cfg" in
  check Alcotest.(list int) "r2 covered" [ 3; 6 ] r2.Coverage.fc_covered;
  check Alcotest.(list int) "r2 uncovered" [] r2.Coverage.fc_uncovered;
  check Alcotest.(list int) "r2 dead" [] r2.Coverage.fc_dead;
  check Alcotest.int "all units attributed" r.Coverage.cov_total
    r.Coverage.cov_attributed;
  check Alcotest.int "counts partition the units" r.Coverage.cov_total
    (r.Coverage.cov_covered + r.Coverage.cov_uncovered + r.Coverage.cov_dead)

(* The dead-config report leads with every dead unit, then the uncovered
   ones, in (file, line) order. *)
let fixture_dead_config_ranked () =
  let r = Batfish.coverage (fixture_session ()) in
  let dc = Coverage.dead_config r in
  check
    Alcotest.(list (pair string int))
    "ranked dead-config lines"
    [ ("r1.cfg", 10); ("r1.cfg", 15); ("r1.cfg", 20); ("r1.cfg", 25);
      ("r1.cfg", 29) ]
    (List.map (fun it -> (it.Coverage.it_file, it.Coverage.it_line)) dc)

(* --- agreement with the lint dead-line passes ---

   Every line LINT003/LINT004 reports dead must be dead in coverage: both
   sides consume the same shared analyses, and this pins that down. *)

let lint_agreement () =
  let bf = fixture_session () in
  let r = Batfish.coverage bf in
  let dead_lines =
    List.filter_map
      (fun it ->
        if it.Coverage.it_status = Coverage.Dead then
          Some (it.Coverage.it_node, it.Coverage.it_line)
        else None)
      r.Coverage.cov_items
  in
  let lint_passes =
    List.filter
      (fun (p : Lint.pass) -> List.mem p.p_code Lint.dead_config_passes)
      Lint.passes
  in
  let report = Lint.run_passes (Batfish.lint_ctx bf) lint_passes in
  let findings =
    List.filter
      (fun (d : Diag.t) ->
        d.d_code = "LINT003" || d.d_code = "LINT004")
      (Lint.findings report)
  in
  if findings = [] then Alcotest.fail "fixture should trip LINT003/LINT004";
  List.iter
    (fun (d : Diag.t) ->
      match (d.d_loc.loc_node, d.d_loc.loc_line) with
      | Some node, Some line ->
        if not (List.mem (node, line) dead_lines) then
          Alcotest.failf "lint dead line %s:%d is not dead in coverage" node
            line
      | _ -> Alcotest.failf "lint finding lacks provenance: %s" (Diag.to_string d))
    findings

(* --- determinism: byte-identical JSON across runs and worker counts --- *)

let coverage_json ?(domains = 1) texts =
  let bf =
    Batfish.init
      ~options:{ Dataplane.default_options with domains }
      (Batfish.Snapshot.of_texts texts)
  in
  Coverage.report_to_json (Batfish.coverage bf)

let determinism () =
  let profiles =
    [ ("clos", fun () -> Netgen.clos ~name:"cv" ~spines:2 ~leaves:3 ());
      ("enterprise", fun () -> Netgen.enterprise ~name:"cw" ~sites:3 ()) ]
  in
  List.iter
    (fun (pname, make) ->
      let texts = (make ()).Netgen.n_configs in
      let j1 = coverage_json texts in
      let j2 = coverage_json texts in
      check Alcotest.string (pname ^ " same JSON twice") j1 j2;
      let j3 = coverage_json ~domains:2 texts in
      check Alcotest.string (pname ^ " JSON invariant under sharding") j1 j3)
    profiles

(* --- the shipped example snapshot: fully attributed, deterministic --- *)

let example_dir () =
  let rec up path n =
    let candidate = Filename.concat path "examples/configs/clean_small" in
    if Sys.file_exists candidate then Some candidate
    else if n = 0 then None
    else up (Filename.concat path "..") (n - 1)
  in
  up "." 6

let clean_small_attribution () =
  match example_dir () with
  | None -> Alcotest.fail "examples/configs/clean_small not found"
  | Some dir ->
    let run () =
      let bf = Batfish.init (Batfish.Snapshot.of_dir dir) in
      Batfish.coverage bf
    in
    let r = run () in
    check Alcotest.bool "has units" true (r.Coverage.cov_total > 0);
    check Alcotest.int "100% attribution" r.Coverage.cov_total
      r.Coverage.cov_attributed;
    check Alcotest.int "no dead config" 0 r.Coverage.cov_dead;
    check Alcotest.string "deterministic JSON"
      (Coverage.report_to_json r)
      (Coverage.report_to_json (run ()))

(* --- the chaos property: coverage never raises, on anything --- *)

let coverage_chaos () =
  let profiles =
    [ ("clos", fun () -> Netgen.clos ~name:"cc" ~spines:2 ~leaves:3 ());
      ("enterprise", fun () -> Netgen.enterprise ~name:"ce" ~sites:3 ());
      ("campus", fun () -> Netgen.campus ~name:"ck" ~buildings:3 ());
      ("wan", fun () -> Netgen.wan ~name:"cn" ~pops:4 ()) ]
  in
  List.iteri
    (fun bi (pname, make) ->
      for seed = 0 to 24 do
        let where = Printf.sprintf "%s seed %d" pname seed in
        let rng = Rng.create ((9000 * bi) + seed) in
        let mutated, _ =
          Chaos.mutate_network ~rng ~mutations:(1 + Rng.int rng 3) (make ())
        in
        let bf = Batfish.init (Batfish.Snapshot.of_texts mutated.Netgen.n_configs) in
        let r =
          try Batfish.coverage bf
          with exn ->
            Alcotest.failf "%s: coverage raised %s" where (Printexc.to_string exn)
        in
        if
          r.Coverage.cov_total
          <> r.Coverage.cov_covered + r.Coverage.cov_uncovered
             + r.Coverage.cov_dead
        then Alcotest.failf "%s: statuses do not partition the units" where;
        ignore (Coverage.report_to_json r);
        ignore (Coverage.report_to_text r)
      done)
    profiles

let suites =
  [ ( "coverage",
      [ Alcotest.test_case "fixture exact line sets" `Quick fixture_exact;
        Alcotest.test_case "dead-config report ranked" `Quick fixture_dead_config_ranked;
        Alcotest.test_case "agrees with lint dead lines" `Quick lint_agreement;
        Alcotest.test_case "deterministic JSON per profile" `Quick determinism;
        Alcotest.test_case "clean_small fully attributed" `Quick clean_small_attribution;
        Alcotest.test_case "coverage chaos (never raises)" `Slow coverage_chaos ] ) ]
