(* Parser tests: IOS and Juniper samples through the full stage-1 pipeline. *)

let check = Alcotest.check

let ios_sample =
  String.concat "\n"
    [ "!";
      "version 15.2";
      "hostname border1";
      "!";
      "ntp server 10.0.0.10";
      "ntp server 10.0.0.11";
      "ip name-server 10.0.0.53";
      "logging host 10.0.0.99";
      "snmp-server community s3cret RO";
      "!";
      "interface Loopback0";
      " ip address 1.1.1.1 255.255.255.255";
      "!";
      "interface Ethernet1";
      " description to core1";
      " ip address 10.0.12.1 255.255.255.252";
      " ip ospf cost 10";
      " ip ospf 1 area 0";
      " no shutdown";
      "!";
      "interface Ethernet2";
      " description to isp";
      " ip address 203.0.113.2 255.255.255.252";
      " ip access-group FROM_ISP in";
      " bandwidth 10000";
      "!";
      "interface Ethernet3";
      " shutdown";
      "!";
      "ip access-list extended FROM_ISP";
      " 10 permit tcp any host 203.0.113.2 eq 179";
      " 20 permit tcp any 10.1.0.0 0.0.255.255 eq 80";
      " 30 permit tcp any any established";
      " 40 permit icmp any any echo";
      " 50 deny ip any any";
      "!";
      "ip prefix-list OUR_NETS seq 5 permit 10.1.0.0/16 le 24";
      "ip prefix-list OUR_NETS seq 10 permit 1.1.1.1/32";
      "ip community-list standard NO_EXPORT_TARGETS permit 65001:100 65001:200";
      "ip as-path access-list FROM_PEER permit ^65002_";
      "!";
      "route-map EXPORT permit 10";
      " match ip address prefix-list OUR_NETS";
      " set metric 100";
      " set community 65001:300 additive";
      "!";
      "route-map EXPORT deny 20";
      "!";
      "route-map IMPORT permit 10";
      " match as-path FROM_PEER";
      " set local-preference 200";
      "!";
      "router ospf 1";
      " router-id 1.1.1.1";
      " network 10.0.12.0 0.0.0.3 area 0";
      " passive-interface Loopback0";
      " redistribute static metric 20 metric-type 1 subnets";
      " maximum-paths 4";
      "!";
      "router bgp 65001";
      " bgp router-id 1.1.1.1";
      " neighbor 203.0.113.1 remote-as 65002";
      " neighbor 203.0.113.1 description upstream";
      " neighbor 203.0.113.1 route-map IMPORT in";
      " neighbor 203.0.113.1 route-map EXPORT out";
      " neighbor 10.255.0.2 remote-as 65001";
      " neighbor 10.255.0.2 update-source Loopback0";
      " neighbor 10.255.0.2 next-hop-self";
      " neighbor 10.255.0.2 send-community";
      " neighbor 10.255.0.2 route-reflector-client";
      " network 10.1.0.0 mask 255.255.0.0";
      " redistribute connected route-map EXPORT";
      " maximum-paths 4";
      " maximum-paths ibgp 4";
      "!";
      "ip route 0.0.0.0 0.0.0.0 203.0.113.1";
      "ip route 10.99.0.0 255.255.0.0 Null0 250";
      "ip route 10.50.0.0 255.255.0.0 10.0.12.2 tag 77";
      "!";
      "ip nat pool POOL1 198.51.100.1 198.51.100.254 prefix-length 24";
      "ip nat inside source list NATACL pool POOL1 overload";
      "ip nat inside source static 10.1.5.5 198.51.100.55";
      "!";
      "zone security INSIDE";
      "zone security OUTSIDE";
      "zone-pair security source INSIDE destination OUTSIDE acl FROM_ISP";
      "!";
      "this is gibberish that should warn";
      "end" ]

let parse_ios () = Parse.parse_config ios_sample

let ios_basics () =
  let cfg, warnings = parse_ios () in
  check Alcotest.string "hostname" "border1" cfg.Vi.hostname;
  check Alcotest.string "vendor" "cisco-ios" cfg.Vi.vendor;
  check Alcotest.int "interfaces" 4 (List.length cfg.Vi.interfaces);
  check Alcotest.(list string) "ntp" [ "10.0.0.10"; "10.0.0.11" ] cfg.Vi.ntp_servers;
  check Alcotest.(list string) "dns" [ "10.0.0.53" ] cfg.Vi.dns_servers;
  check Alcotest.bool "snmp" true (cfg.Vi.snmp_community = Some "s3cret");
  (* exactly the gibberish line should be an unrecognized-syntax warning,
     plus the undefined NATACL is not checked at parse time *)
  let unrecognized =
    List.filter (fun (w : Diag.t) -> w.d_code = Diag.code_unrecognized_syntax) warnings
  in
  check Alcotest.int "one unrecognized line" 1 (List.length unrecognized)

let ios_interfaces () =
  let cfg, _ = parse_ios () in
  let e1 = Option.get (Vi.find_interface cfg "Ethernet1") in
  check Alcotest.bool "address" true
    (e1.Vi.if_address = Some (Ipv4.of_string "10.0.12.1", 30));
  (match e1.Vi.if_ospf with
   | Some oi ->
     check Alcotest.int "ospf area" 0 oi.Vi.oi_area;
     check Alcotest.bool "ospf cost" true (oi.Vi.oi_cost = Some 10)
   | None -> Alcotest.fail "expected ospf settings");
  let e2 = Option.get (Vi.find_interface cfg "Ethernet2") in
  check Alcotest.bool "in acl" true (e2.Vi.if_in_acl = Some "FROM_ISP");
  check Alcotest.int "bandwidth Mbps" 10 e2.Vi.if_bandwidth;
  let e3 = Option.get (Vi.find_interface cfg "Ethernet3") in
  check Alcotest.bool "shutdown" false e3.Vi.if_enabled;
  let lo = Option.get (Vi.find_interface cfg "Loopback0") in
  check Alcotest.bool "loopback /32" true (lo.Vi.if_address = Some (Ipv4.of_string "1.1.1.1", 32))

let ios_acl () =
  let cfg, _ = parse_ios () in
  let acl = Option.get (Vi.find_acl cfg "FROM_ISP") in
  check Alcotest.int "lines" 5 (List.length acl.Vi.acl_lines);
  let l10 = List.nth acl.Vi.acl_lines 0 in
  check Alcotest.bool "proto tcp" true (l10.Vi.l_proto = Some 6);
  check Alcotest.bool "dst host" true (Prefix.equal l10.Vi.l_dst (Prefix.of_string "203.0.113.2/32"));
  check Alcotest.(list (pair int int)) "bgp port" [ (179, 179) ] l10.Vi.l_dst_ports;
  let l30 = List.nth acl.Vi.acl_lines 2 in
  check Alcotest.bool "established" true l30.Vi.l_established;
  let l40 = List.nth acl.Vi.acl_lines 3 in
  check Alcotest.bool "icmp echo" true (l40.Vi.l_icmp_type = Some 8);
  let l50 = List.nth acl.Vi.acl_lines 4 in
  check Alcotest.bool "deny" true (l50.Vi.l_action = Vi.Deny)

let ios_policy () =
  let cfg, _ = parse_ios () in
  let pl = Option.get (Vi.find_prefix_list cfg "OUR_NETS") in
  check Alcotest.int "pl entries" 2 (List.length pl.Vi.pl_entries);
  let e5 = List.hd pl.Vi.pl_entries in
  check Alcotest.bool "le 24" true (e5.Vi.ple_le = Some 24);
  let rm = Option.get (Vi.find_route_map cfg "EXPORT") in
  check Alcotest.int "clauses" 2 (List.length rm.Vi.rm_clauses);
  let c10 = List.hd rm.Vi.rm_clauses in
  check Alcotest.bool "clause 10 permit" true (c10.Vi.rc_action = Vi.Permit);
  check Alcotest.int "sets" 2 (List.length c10.Vi.rc_sets);
  (match List.nth c10.Vi.rc_sets 1 with
   | Vi.Set_communities ([ c ], true) ->
     check Alcotest.string "community" "65001:300" (Vi.community_to_string c)
   | _ -> Alcotest.fail "expected additive community set");
  let cl = Option.get (Vi.find_community_list cfg "NO_EXPORT_TARGETS") in
  check Alcotest.int "cl entries" 2 (List.length cl.Vi.cl_entries)

let ios_routing () =
  let cfg, _ = parse_ios () in
  let ospf = Option.get cfg.Vi.ospf in
  check Alcotest.bool "router id" true (ospf.Vi.op_router_id = Some (Ipv4.of_string "1.1.1.1"));
  check Alcotest.int "max paths" 4 ospf.Vi.op_max_paths;
  check Alcotest.int "networks" 1 (List.length ospf.Vi.op_networks);
  (match ospf.Vi.op_redistribute with
   | [ rd ] ->
     check Alcotest.string "redist proto" "static" rd.Vi.rd_protocol;
     check Alcotest.bool "metric" true (rd.Vi.rd_metric = Some 20);
     check Alcotest.bool "type E1" true (rd.Vi.rd_metric_type = Vi.E1)
   | _ -> Alcotest.fail "expected one redistribution");
  let bgp = Option.get cfg.Vi.bgp in
  check Alcotest.int "asn" 65001 bgp.Vi.bp_as;
  check Alcotest.int "neighbors" 2 (List.length bgp.Vi.bp_neighbors);
  let ext = List.hd bgp.Vi.bp_neighbors in
  check Alcotest.int "remote as" 65002 ext.Vi.bn_remote_as;
  check Alcotest.bool "import" true (ext.Vi.bn_import_policy = Some "IMPORT");
  let rr = List.nth bgp.Vi.bp_neighbors 1 in
  check Alcotest.bool "rr client" true rr.Vi.bn_route_reflector_client;
  check Alcotest.bool "update source" true (rr.Vi.bn_update_source = Some "Loopback0");
  check Alcotest.int "statics" 3 (List.length cfg.Vi.static_routes);
  let s2 = List.nth cfg.Vi.static_routes 1 in
  check Alcotest.bool "null route" true (s2.Vi.sr_next_hop = Vi.Nh_discard);
  check Alcotest.int "ad" 250 s2.Vi.sr_ad;
  let s3 = List.nth cfg.Vi.static_routes 2 in
  check Alcotest.int "tag" 77 s3.Vi.sr_tag

let ios_nat_zones () =
  let cfg, _ = parse_ios () in
  (* pool rule + static source + static dest *)
  check Alcotest.int "nat rules" 3 (List.length cfg.Vi.nat_rules);
  let pool_rule = List.hd cfg.Vi.nat_rules in
  check Alcotest.bool "match acl" true (pool_rule.Vi.nr_match_acl = Some "NATACL");
  (match pool_rule.Vi.nr_pool with
   | Vi.Nat_prefix p -> check Alcotest.string "pool" "198.51.100.0/24" (Prefix.to_string p)
   | _ -> Alcotest.fail "expected prefix pool");
  check Alcotest.int "zones" 2 (List.length cfg.Vi.zones);
  check Alcotest.int "zone policies" 1 (List.length cfg.Vi.zone_policies)

let juniper_sample =
  String.concat "\n"
    [ "# juniper core router";
      "set system host-name core1";
      "set system ntp server 10.0.0.10";
      "set system name-server 10.0.0.53";
      "set snmp community public";
      "set interfaces ge-0/0/0 unit 0 family inet address 10.0.12.2/30";
      "set interfaces ge-0/0/1 unit 0 family inet address 10.0.23.1/30";
      "set interfaces ge-0/0/1 unit 0 family inet filter input PROTECT";
      "set interfaces ge-0/0/2 disable";
      "set interfaces lo0 unit 0 family inet address 2.2.2.2/32";
      "set routing-options autonomous-system 65001";
      "set routing-options router-id 2.2.2.2";
      "set routing-options static route 10.99.0.0/16 next-hop 10.0.23.2";
      "set routing-options static route 10.98.0.0/16 discard";
      "set protocols ospf reference-bandwidth 100000";
      "set protocols ospf area 0 interface ge-0/0/0 metric 10";
      "set protocols ospf area 0 interface ge-0/0/1";
      "set protocols ospf area 0 interface lo0 passive";
      "set protocols ospf export REDIST_STATIC";
      "set protocols bgp group ibgp type internal";
      "set protocols bgp group ibgp cluster 2.2.2.2";
      "set protocols bgp group ibgp neighbor 1.1.1.1";
      "set protocols bgp group ibgp neighbor 3.3.3.3";
      "set protocols bgp group ebgp neighbor 192.0.2.1 peer-as 65010";
      "set protocols bgp group ebgp import FROM_PEER";
      "set protocols bgp group ebgp export TO_PEER";
      "set protocols bgp group ebgp multipath";
      "set policy-options prefix-list OUR_NETS 10.1.0.0/16";
      "set policy-options prefix-list OUR_NETS 10.2.0.0/16";
      "set policy-options community PEER_COMM members 65010:1";
      "set policy-options policy-statement FROM_PEER term accept-peer from prefix-list OUR_NETS";
      "set policy-options policy-statement FROM_PEER term accept-peer then local-preference 150";
      "set policy-options policy-statement FROM_PEER term accept-peer then community add PEER_COMM";
      "set policy-options policy-statement FROM_PEER term accept-peer then accept";
      "set policy-options policy-statement FROM_PEER term reject-rest then reject";
      "set policy-options policy-statement TO_PEER term nets from route-filter 10.1.0.0/16 orlonger";
      "set policy-options policy-statement TO_PEER term nets then accept";
      "set policy-options policy-statement TO_PEER term rest then reject";
      "set policy-options policy-statement REDIST_STATIC term st from protocol static";
      "set policy-options policy-statement REDIST_STATIC term st then accept";
      "set firewall family inet filter PROTECT term web from destination-address 10.1.0.0/16";
      "set firewall family inet filter PROTECT term web from protocol tcp";
      "set firewall family inet filter PROTECT term web from destination-port 80";
      "set firewall family inet filter PROTECT term web then accept";
      "set firewall family inet filter PROTECT term drop then discard";
      "set security zones security-zone trust interfaces ge-0/0/1";
      "set security zones security-zone untrust interfaces ge-0/0/0";
      "set security policies from-zone trust to-zone untrust filter PROTECT";
      "set bogus statement here" ]

let parse_jnp () = Parse.parse_config juniper_sample

let juniper_basics () =
  let cfg, warnings = parse_jnp () in
  check Alcotest.string "hostname" "core1" cfg.Vi.hostname;
  check Alcotest.string "vendor" "juniper" cfg.Vi.vendor;
  check Alcotest.int "interfaces" 4 (List.length cfg.Vi.interfaces);
  let unrecognized =
    List.filter (fun (w : Diag.t) -> w.d_code = Diag.code_unrecognized_syntax) warnings
  in
  check Alcotest.int "one unrecognized" 1 (List.length unrecognized)

let juniper_interfaces () =
  let cfg, _ = parse_jnp () in
  let ge0 = Option.get (Vi.find_interface cfg "ge-0/0/0") in
  check Alcotest.bool "address" true (ge0.Vi.if_address = Some (Ipv4.of_string "10.0.12.2", 30));
  (match ge0.Vi.if_ospf with
   | Some oi -> check Alcotest.bool "metric" true (oi.Vi.oi_cost = Some 10)
   | None -> Alcotest.fail "ospf expected");
  let ge1 = Option.get (Vi.find_interface cfg "ge-0/0/1") in
  check Alcotest.bool "filter input" true (ge1.Vi.if_in_acl = Some "PROTECT");
  let lo = Option.get (Vi.find_interface cfg "lo0") in
  (match lo.Vi.if_ospf with
   | Some oi -> check Alcotest.bool "passive" true oi.Vi.oi_passive
   | None -> Alcotest.fail "ospf expected on lo0");
  let ge2 = Option.get (Vi.find_interface cfg "ge-0/0/2") in
  check Alcotest.bool "disabled" false ge2.Vi.if_enabled

let juniper_policy () =
  let cfg, _ = parse_jnp () in
  let rm = Option.get (Vi.find_route_map cfg "FROM_PEER") in
  check Alcotest.int "two terms" 2 (List.length rm.Vi.rm_clauses);
  let t1 = List.hd rm.Vi.rm_clauses in
  check Alcotest.bool "match pl" true (t1.Vi.rc_matches = [ Vi.Match_prefix_list "OUR_NETS" ]);
  check Alcotest.int "two sets" 2 (List.length t1.Vi.rc_sets);
  let t2 = List.nth rm.Vi.rm_clauses 1 in
  check Alcotest.bool "reject term" true (t2.Vi.rc_action = Vi.Deny);
  (* route-filter becomes an anonymous prefix list *)
  let to_peer = Option.get (Vi.find_route_map cfg "TO_PEER") in
  (match (List.hd to_peer.Vi.rm_clauses).Vi.rc_matches with
   | [ Vi.Match_prefix_list anon ] -> (
     match Vi.find_prefix_list cfg anon with
     | Some pl ->
       let e = List.hd pl.Vi.pl_entries in
       check Alcotest.bool "orlonger ge" true (e.Vi.ple_ge = Some 16)
     | None -> Alcotest.fail "anonymous prefix list not registered")
   | _ -> Alcotest.fail "expected prefix-list match");
  (* ospf export decomposed into a redistribution *)
  let ospf = Option.get cfg.Vi.ospf in
  (match ospf.Vi.op_redistribute with
   | [ rd ] ->
     check Alcotest.string "proto" "static" rd.Vi.rd_protocol;
     check Alcotest.bool "policy attached" true (rd.Vi.rd_route_map = Some "REDIST_STATIC")
   | _ -> Alcotest.fail "expected one redistribution")

let juniper_bgp () =
  let cfg, _ = parse_jnp () in
  let bgp = Option.get cfg.Vi.bgp in
  check Alcotest.int "asn" 65001 bgp.Vi.bp_as;
  check Alcotest.int "neighbors" 3 (List.length bgp.Vi.bp_neighbors);
  let ibgp1 = List.hd bgp.Vi.bp_neighbors in
  check Alcotest.int "ibgp remote as" 65001 ibgp1.Vi.bn_remote_as;
  check Alcotest.bool "rr client" true ibgp1.Vi.bn_route_reflector_client;
  let ebgp = List.nth bgp.Vi.bp_neighbors 2 in
  check Alcotest.int "ebgp peer" 65010 ebgp.Vi.bn_remote_as;
  check Alcotest.bool "import" true (ebgp.Vi.bn_import_policy = Some "FROM_PEER");
  check Alcotest.bool "multipath" true (bgp.Vi.bp_max_paths > 1);
  check Alcotest.bool "cluster id" true (bgp.Vi.bp_cluster_id = Some (Ipv4.of_string "2.2.2.2"))

let juniper_firewall () =
  let cfg, _ = parse_jnp () in
  let acl = Option.get (Vi.find_acl cfg "PROTECT") in
  check Alcotest.int "two lines" 2 (List.length acl.Vi.acl_lines);
  let web = List.hd acl.Vi.acl_lines in
  check Alcotest.bool "tcp" true (web.Vi.l_proto = Some 6);
  check Alcotest.(list (pair int int)) "port 80" [ (80, 80) ] web.Vi.l_dst_ports;
  check Alcotest.int "zones" 2 (List.length cfg.Vi.zones);
  check Alcotest.int "zone policy" 1 (List.length cfg.Vi.zone_policies)

let vendor_detection () =
  check Alcotest.string "juniper" "juniper" (Parse.detect_vendor juniper_sample);
  check Alcotest.string "ios" "cisco-ios" (Parse.detect_vendor ios_sample);
  check Alcotest.string "arista" "arista-eos"
    (Parse.detect_vendor "! Arista vEOS\nhostname sw1\n")

let undefined_refs () =
  let cfg, _ = parse_ios () in
  let refs = Parse.undefined_references cfg in
  (* NATACL is referenced by the NAT rule but never defined. *)
  check Alcotest.bool "NATACL undefined" true
    (List.exists (fun (ty, name, _) -> ty = "acl" && name = "NATACL") refs);
  (* EXPORT and IMPORT are defined, so no route-map refs. *)
  check Alcotest.bool "no undefined route-maps" true
    (not (List.exists (fun (ty, _, _) -> ty = "route-map") refs))

let undefined_route_map () =
  let text =
    String.concat "\n"
      [ "hostname r1";
        "router bgp 65000";
        " neighbor 10.0.0.2 remote-as 65001";
        " neighbor 10.0.0.2 route-map MISSING in" ]
  in
  let cfg, _ = Parse.parse_config text in
  let refs = Parse.undefined_references cfg in
  check Alcotest.bool "missing route-map flagged" true
    (List.exists (fun (ty, name, _) -> ty = "route-map" && name = "MISSING") refs)

let community_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"community string roundtrip"
       (QCheck.pair (QCheck.int_bound 65535) (QCheck.int_bound 65535))
       (fun (a, v) ->
         Vi.community_of_string (Vi.community_to_string (Vi.community a v))
         = Some (Vi.community a v)))

let suites =
  [ ( "config.ios",
      [ Alcotest.test_case "basics" `Quick ios_basics;
        Alcotest.test_case "interfaces" `Quick ios_interfaces;
        Alcotest.test_case "acl" `Quick ios_acl;
        Alcotest.test_case "policy" `Quick ios_policy;
        Alcotest.test_case "routing" `Quick ios_routing;
        Alcotest.test_case "nat+zones" `Quick ios_nat_zones ] );
    ( "config.juniper",
      [ Alcotest.test_case "basics" `Quick juniper_basics;
        Alcotest.test_case "interfaces" `Quick juniper_interfaces;
        Alcotest.test_case "policy" `Quick juniper_policy;
        Alcotest.test_case "bgp" `Quick juniper_bgp;
        Alcotest.test_case "firewall" `Quick juniper_firewall ] );
    ( "config.refs",
      [ Alcotest.test_case "vendor detection" `Quick vendor_detection;
        Alcotest.test_case "undefined refs" `Quick undefined_refs;
        Alcotest.test_case "undefined route-map" `Quick undefined_route_map;
        community_roundtrip ] ) ]
