(* System-level tests: the synthetic network profiles through the whole
   pipeline, the question engine, snapshot differentials, and the §4.3.2
   cross-validation harness on generated networks. *)

let check = Alcotest.check

let profile name = List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles

let load ?options (net : Netgen.network) =
  Batfish.init ?options ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts net.Netgen.n_configs)

(* every profile parses cleanly, converges, and establishes all sessions *)
let profiles_clean () =
  List.iter
    (fun (p : Netgen.profile) ->
      let net = p.p_make 0.3 in
      let bf = load net in
      let unrecognized =
        List.concat_map
          (fun (_, ws) ->
            List.filter (fun (w : Diag.t) -> w.d_code = Diag.code_unrecognized_syntax) ws)
          (Batfish.Snapshot.parse_warnings (Batfish.snapshot bf))
      in
      check Alcotest.int (p.p_name ^ " no unrecognized syntax") 0 (List.length unrecognized);
      let dp = Batfish.dataplane bf in
      check Alcotest.bool (p.p_name ^ " converged") true dp.Dataplane.converged;
      check Alcotest.bool (p.p_name ^ " sessions up") true
        (List.for_all (fun s -> s.Dataplane.sr_established) dp.Dataplane.sessions);
      check Alcotest.bool (p.p_name ^ " has routes") true (Dataplane.total_routes dp > 0))
    Netgen.profiles

let generation_deterministic () =
  let p = profile "NET5" in
  let a = (p.p_make 0.5).Netgen.n_configs in
  let b = (p.p_make 0.5).Netgen.n_configs in
  check Alcotest.bool "same text" true (a = b)

(* the §4.3.2 harness on generated networks *)
let engine_cross_validation () =
  List.iter
    (fun name ->
      let p = profile name in
      let bf = load (p.p_make 0.3) in
      let flows = Batfish.differential_engine_test bf in
      check Alcotest.bool (name ^ " flows checked") true (flows > 0))
    [ "NET1"; "NET3"; "NET5"; "NET7" ]

(* clean fabric: all leaf subnets reach each other *)
let clos_reachability () =
  let net = Netgen.clos ~name:"sys" ~spines:2 ~leaves:4 () in
  let bf = load net in
  let q = Batfish.forwarding bf in
  let e = Fquery.env q in
  let man = Pktset.man e in
  let hdr =
    Bdd.band man
      (Pktset.src_prefix e (Prefix.of_string "172.16.0.0/24"))
      (Pktset.value e Field.Protocol Packet.Proto.tcp)
  in
  let delivered =
    Fquery.reachable q ~src:("sys-leaf1", Some "Vlan100") ~hdr
      ~dst_ip:(Prefix.of_string "172.16.3.0/24") ()
  in
  check Alcotest.bool "leaf1 hosts reach leaf4 subnet" false (Bdd.is_bot delivered);
  (* anti-spoofing edge ACL: sources outside the subnet are dropped *)
  let spoofed =
    Fquery.reachable q ~src:("sys-leaf1", Some "Vlan100")
      ~hdr:(Pktset.src_prefix e (Prefix.of_string "192.168.0.0/16"))
      ~dst_ip:(Prefix.of_string "172.16.3.0/24") ()
  in
  check Alcotest.bool "spoofed sources dropped" true (Bdd.is_bot spoofed)

(* the question engine on a network with deliberate issues *)
let broken_network () =
  [ String.concat "\n"
      [ "hostname r1";
        "interface e1"; " ip address 10.0.0.1 255.255.255.252";
        "interface e2"; " ip address 10.0.1.1 255.255.255.252";
        "ntp server 1.1.1.1";
        "ip access-list extended UNUSED_ACL";
        " 10 permit ip any any";
        "router bgp 100";
        " neighbor 10.0.0.2 remote-as 999";
        " neighbor 10.0.0.2 route-map MISSING_MAP in" ];
    String.concat "\n"
      [ "hostname r2";
        "interface e1"; " ip address 10.0.0.2 255.255.255.252";
        "interface dup"; " ip address 10.0.1.1 255.255.255.252";
        "ntp server 2.2.2.2";
        "router bgp 200";
        " neighbor 10.0.0.1 remote-as 100" ];
    String.concat "\n"
      [ "hostname r3";
        "interface e9"; " ip address 10.0.9.1 255.255.255.252";
        "ntp server 1.1.1.1" ] ]

let questions_find_issues () =
  let bf =
    Batfish.init
      (Batfish.Snapshot.of_texts
         (List.mapi (fun i t -> (Printf.sprintf "r%d.cfg" (i + 1), t)) (broken_network ())))
  in
  let rows a = a.Questions.a_rows in
  let undef = rows (Batfish.answer_undefined_references bf) in
  check Alcotest.bool "undefined route-map" true
    (List.exists (fun r -> List.nth r 2 = "MISSING_MAP") undef);
  let unused = rows (Batfish.answer_unused_structures bf) in
  check Alcotest.bool "unused acl" true
    (List.exists (fun r -> List.nth r 2 = "UNUSED_ACL") unused);
  let dups = rows (Batfish.answer_duplicate_ips bf) in
  check Alcotest.bool "duplicate 10.0.1.1" true
    (List.exists (fun r -> List.hd r = "10.0.1.1") dups);
  let compat = rows (Batfish.answer_bgp_compatibility bf) in
  check Alcotest.bool "as mismatch flagged" true (List.length compat >= 1);
  let ntp = rows (Batfish.answer_property_consistency bf) in
  check Alcotest.bool "ntp outlier found" true
    (List.exists (fun r -> List.hd r = "r2" && List.nth r 1 = "ntp-servers") ntp);
  let status = rows (Batfish.answer_bgp_status bf) in
  check Alcotest.bool "session down in status" true
    (List.exists (fun r -> List.exists (fun c -> c = "DOWN") r) status)

let questions_routes_and_filters () =
  let net = Netgen.clos ~name:"qrf" ~spines:2 ~leaves:2 () in
  let bf = load net in
  let routes = Batfish.answer_routes ~node:"qrf-leaf1" bf in
  check Alcotest.bool "routes listed" true (List.length routes.Questions.a_rows > 3);
  let cfg = Option.get (Batfish.Snapshot.find (Batfish.snapshot bf) "qrf-leaf1") in
  let pkt =
    Packet.tcp ~src:(Ipv4.of_string "172.16.0.10") ~dst:(Ipv4.of_string "172.16.1.10") 80
  in
  let tf = Questions.test_filters cfg ~acl:"EDGE_IN" pkt in
  check Alcotest.bool "edge acl permits subnet sources" true
    (List.exists (fun r -> List.exists (( = ) "PERMIT") r) tf.Questions.a_rows);
  let spoof = Questions.test_filters cfg ~acl:"EDGE_IN" { pkt with Packet.src_ip = Ipv4.of_string "9.9.9.9" } in
  check Alcotest.bool "edge acl denies spoofed" true
    (List.exists (fun r -> List.exists (( = ) "DENY") r) spoof.Questions.a_rows);
  let e = Fquery.env (Batfish.forwarding bf) in
  let sf = Questions.search_filters e cfg ~acl:"EDGE_IN" ~action:Vi.Permit in
  check Alcotest.bool "searchFilters yields example" true
    (List.exists (fun r -> List.exists (( = ) "example") r) sf.Questions.a_rows)

(* differential reachability across a change (the §5.1 CI workflow) *)
let snapshot_differential () =
  let base_cfgs = Netgen.clos ~name:"dif" ~spines:2 ~leaves:2 () in
  let bf_base = load base_cfgs in
  (* candidate change: leaf2's edge ACL now denies TCP/80 into the fabric *)
  let candidate =
    List.map
      (fun (name, text) ->
        if name = "dif-leaf2.cfg" then
          ( name,
            Re.replace_string
              (Re.compile (Re.str "ip access-list extended EDGE_IN"))
              ~by:"ip access-list extended EDGE_IN\n 5 deny tcp any any eq 80" text )
        else (name, text))
      base_cfgs.Netgen.n_configs
  in
  let bf_cand = Batfish.init (Batfish.Snapshot.of_texts candidate) in
  let answer = Batfish.differential ~base:bf_base ~candidate:bf_cand () in
  check Alcotest.bool "lost flows reported" true
    (List.exists (fun r -> List.exists (( = ) "LOST") r) answer.Questions.a_rows);
  (* the lost flow is web traffic *)
  check Alcotest.bool "lost flow is port 80" true
    (List.exists
       (fun r ->
         List.exists (( = ) "LOST") r
         && List.exists (fun c -> Re.execp (Re.compile (Re.str "dport=80")) c) r)
       answer.Questions.a_rows)

let suites =
  [ ( "system.netgen",
      [ Alcotest.test_case "profiles clean" `Slow profiles_clean;
        Alcotest.test_case "deterministic" `Quick generation_deterministic;
        Alcotest.test_case "clos reachability" `Quick clos_reachability ] );
    ( "system.questions",
      [ Alcotest.test_case "issues found" `Quick questions_find_issues;
        Alcotest.test_case "routes+filters" `Quick questions_routes_and_filters;
        Alcotest.test_case "differential" `Quick snapshot_differential ] );
    ( "system.crossvalidation",
      [ Alcotest.test_case "engines agree on profiles" `Slow engine_cross_validation ] ) ]
