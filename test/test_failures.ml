(* Failure-scenario exploration (ISSUE 6). The contracts under test:
   enumeration is deterministic with singles before pairs (so the first
   failing scenario in id order is minimal), atom pruning never changes a
   verdict relative to brute-force enumeration, warm fault-injected
   re-simulation is bit-identical to a cold from-scratch recompute of every
   scenario (chaos-seeded), and a scenario the engine cannot trust is
   quarantined as inconclusive with a diag instead of aborting the sweep. *)

let check = Alcotest.check

let profile name =
  List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles

let setup ?(scale = 0.25) (p : Netgen.profile) =
  let net = p.p_make scale in
  let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
  let configs_list = Batfish.Snapshot.configs snap in
  let find = Batfish.Snapshot.find snap in
  let dp = Dataplane.compute ~env:net.Netgen.n_env configs_list in
  let q = Fquery.make ~configs:find ~dp () in
  (net, configs_list, find, dp, q)

let sweep ?pool ?domains ?prune ?options ~k (net, configs_list, find, dp, q) =
  let options = Option.value options ~default:Dataplane.default_options in
  Failures.run ?pool ?domains ?prune ~k ~options ~env:net.Netgen.n_env
    ~configs_list ~find ~base_dp:dp ~base_fq:q ()

(* --- enumeration shape --------------------------------------------------- *)

let enumeration_shape () =
  let _, _, _, dp, _ = setup (profile "NET3") in
  let topo = dp.Dataplane.topo in
  let links = L3.links topo in
  let nodes_with_eps =
    List.filter (fun n -> L3.endpoints topo n <> []) (L3.nodes topo)
  in
  check Alcotest.bool "topology has links" true (links <> []);
  let n = List.length links + List.length nodes_with_eps in
  let singles = Failures.enumerate ~topo ~k:1 in
  check Alcotest.int "singles = links + nodes" n (List.length singles);
  let doubles = Failures.enumerate ~topo ~k:2 in
  check Alcotest.int "doubles add every unordered pair"
    (n + (n * (n - 1) / 2))
    (List.length doubles);
  List.iteri
    (fun i (sc : Failures.scenario) ->
      check Alcotest.int "ids are the enumeration order" i sc.Failures.sc_id;
      check Alcotest.int "singles enumerate before pairs"
        (if i < n then 1 else 2)
        (List.length sc.Failures.sc_elements))
    doubles;
  (* the same call enumerates the same list *)
  check Alcotest.bool "deterministic" true
    (Failures.enumerate ~topo ~k:2 = doubles)

(* --- pruning vs brute force ---------------------------------------------- *)

let outcome_key (r : Failures.result) =
  (r.Failures.r_scenario.Failures.sc_id, r.Failures.r_outcome)

let pruned_equals_brute () =
  List.iter
    (fun name ->
      let ctx = setup (profile name) in
      List.iter
        (fun k ->
          let pruned = sweep ~prune:true ~k ctx in
          let brute = sweep ~prune:false ~k ctx in
          check Alcotest.int
            (Printf.sprintf "%s k=%d same enumeration" name k)
            brute.Failures.rp_enumerated pruned.Failures.rp_enumerated;
          check Alcotest.int "brute simulates everything"
            brute.Failures.rp_enumerated brute.Failures.rp_simulated;
          check Alcotest.bool "pruned simulates no more than brute" true
            (pruned.Failures.rp_simulated <= brute.Failures.rp_simulated);
          (* the point of the equivalence classes: expanded per-scenario
             outcomes — verdicts and counterexample packets — are identical
             to checking every scenario individually *)
          check Alcotest.bool
            (Printf.sprintf "%s k=%d identical expanded outcomes" name k)
            true
            (List.map outcome_key pruned.Failures.rp_results
            = List.map outcome_key brute.Failures.rp_results);
          check Alcotest.bool "identical surviving properties" true
            (pruned.Failures.rp_surviving = brute.Failures.rp_surviving);
          check Alcotest.bool "identical minimal failing scenarios" true
            (pruned.Failures.rp_failing = brute.Failures.rp_failing))
        [ 1; 2 ])
    [ "NET1"; "NET3" ]

(* --- the acceptance sweep: k=1 and k=2 on every profile ------------------ *)

let sweep_every_profile () =
  List.iter
    (fun (p : Netgen.profile) ->
      let ctx = setup ~scale:0.1 p in
      List.iter
        (fun k ->
          let r = sweep ~k ctx in
          let name = Printf.sprintf "%s k=%d" p.Netgen.p_name k in
          check Alcotest.int (name ^ ": every scenario has a result")
            r.Failures.rp_enumerated
            (List.length r.Failures.rp_results);
          check Alcotest.bool (name ^ ": pruned <= brute-force count") true
            (r.Failures.rp_simulated <= r.Failures.rp_enumerated);
          check Alcotest.int (name ^ ": pruned accounting")
            r.Failures.rp_enumerated
            (r.Failures.rp_simulated + r.Failures.rp_pruned);
          (* surviving/failing partition the conclusive verdict space *)
          List.iter
            (fun pr ->
              check Alcotest.bool (name ^ ": no property in both sets") false
                (List.exists (fun (p', _, _) -> p' = pr) r.Failures.rp_failing))
            r.Failures.rp_surviving;
          (* every failing property carries a minimal failing scenario and a
             concrete counterexample *)
          let prop_index pr =
            let rec idx i = function
              | [] -> Alcotest.failf "%s: failing property unknown" name
              | p' :: _ when p' = pr -> i
              | _ :: tl -> idx (i + 1) tl
            in
            idx 0 r.Failures.rp_properties
          in
          List.iter
            (fun (pr, (sc : Failures.scenario), pkt) ->
              check Alcotest.bool (name ^ ": counterexample packet present")
                true (pkt <> None);
              let i = prop_index pr in
              List.iter
                (fun (res : Failures.result) ->
                  if res.Failures.r_scenario.Failures.sc_id < sc.Failures.sc_id
                  then
                    match res.Failures.r_outcome with
                    | Failures.Checked vs -> (
                      match List.nth vs i with
                      | Failures.Violated _ ->
                        Alcotest.failf
                          "%s: scenario %d fails before reported minimal %d"
                          name res.Failures.r_scenario.Failures.sc_id
                          sc.Failures.sc_id
                      | Failures.Holds -> ())
                    | Failures.Inconclusive _ -> ())
                r.Failures.rp_results)
            r.Failures.rp_failing)
        [ 1; 2 ])
    Netgen.profiles

(* --- warm = cold, chaos-seeded ------------------------------------------- *)

let chaos_warm_equals_cold () =
  let checked = ref 0 in
  for seed = 1 to 100 do
    let rng = Rng.create (5000 + seed) in
    let net = Netgen.clos ~name:"fchaos" ~spines:1 ~leaves:3 () in
    let mutated, _ = Chaos.mutate_network ~rng ~mutations:2 net in
    let snap = Batfish.Snapshot.of_texts mutated.Netgen.n_configs in
    let configs_list = Batfish.Snapshot.configs snap in
    let find = Batfish.Snapshot.find snap in
    match
      let dp = Dataplane.compute ~env:mutated.Netgen.n_env configs_list in
      let q = Fquery.make ~configs:find ~dp () in
      (dp, q)
    with
    | exception _ -> () (* the mutation broke base analysis: not this test *)
    | dp, q ->
      (* exercise the fan-out path on a third of the seeds *)
      let domains = if seed mod 3 = 0 then 2 else 1 in
      let r =
        sweep ~domains ~k:1 (mutated, configs_list, find, dp, q)
      in
      let cold =
        Failures.cold_context ~options:Dataplane.default_options
          ~env:mutated.Netgen.n_env ~configs_list ~find ()
      in
      List.iter
        (fun (res : Failures.result) ->
          if res.Failures.r_rep = res.Failures.r_scenario.Failures.sc_id then begin
            incr checked;
            let co =
              Failures.cold_outcome cold ~properties:r.Failures.rp_properties
                res.Failures.r_scenario
            in
            if co <> res.Failures.r_outcome then
              Alcotest.failf
                "seed %d: scenario %d (%s) warm outcome differs from cold"
                seed res.Failures.r_scenario.Failures.sc_id
                (Failures.scenario_to_string res.Failures.r_scenario)
          end)
        r.Failures.rp_results
  done;
  check Alcotest.bool "compared a real scenario population" true (!checked > 50)

(* --- pool fan-out is bit-identical to the serial sweep ------------------- *)

let pool_sweep_identical () =
  let ctx = setup (profile "NET3") in
  let serial = sweep ~k:1 ctx in
  let pool = Par.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let pooled = sweep ~pool ~k:1 ctx in
      check Alcotest.bool "pooled sweep identical to serial" true
        (List.map outcome_key pooled.Failures.rp_results
        = List.map outcome_key serial.Failures.rp_results);
      check Alcotest.bool "same failing report" true
        (pooled.Failures.rp_failing = serial.Failures.rp_failing))

(* --- quarantine semantics ------------------------------------------------ *)

let inconclusive_never_aborts () =
  let ctx = setup (profile "NET3") in
  (* the base fixed point is healthy, but every per-scenario re-simulation
     gets a fuel budget too small for BGP to converge *)
  let crippled = { Dataplane.default_options with Dataplane.max_rounds = 1 } in
  let r = sweep ~options:crippled ~k:1 ctx in
  check Alcotest.bool "some scenarios are inconclusive" true
    (r.Failures.rp_inconclusive <> []);
  check Alcotest.int "the sweep still covered every scenario"
    r.Failures.rp_enumerated
    (List.length r.Failures.rp_results);
  List.iter
    (fun (_, why) ->
      check Alcotest.bool "reason is human-readable" true
        (String.length why > 0))
    r.Failures.rp_inconclusive;
  let quarantine_diags =
    List.filter
      (fun (d : Diag.t) -> d.Diag.d_code = Diag.code_scenario_inconclusive)
      r.Failures.rp_diags
  in
  check Alcotest.int "one diag per inconclusive representative"
    (List.length quarantine_diags)
    (List.length r.Failures.rp_inconclusive);
  List.iter
    (fun (d : Diag.t) ->
      check Alcotest.bool "diag is well-formed" true (Diag.well_formed d))
    quarantine_diags;
  (* an inconclusive scenario claims no verdict: it must not appear as any
     property's minimal failing scenario *)
  List.iter
    (fun (_, (sc : Failures.scenario), _) ->
      check Alcotest.bool "failing scenario is conclusive" false
        (List.exists
           (fun ((sc' : Failures.scenario), _) ->
             sc'.Failures.sc_id = sc.Failures.sc_id)
           r.Failures.rp_inconclusive))
    r.Failures.rp_failing

(* --- the session surface ------------------------------------------------- *)

let session_surface () =
  let p = profile "NET1" in
  let net = p.p_make 0.25 in
  let bf =
    Batfish.init ~env:net.Netgen.n_env
      (Batfish.Snapshot.of_texts net.Netgen.n_configs)
  in
  let report, answers = Batfish.answer_failures ~k:1 bf in
  check Alcotest.int "two answers" 2 (List.length answers);
  let verification = List.nth answers 1 in
  check Alcotest.int "one row per property"
    (List.length report.Failures.rp_properties)
    (List.length verification.Questions.a_rows);
  List.iter
    (fun row ->
      check Alcotest.int "verdict rows have four columns" 4 (List.length row);
      check Alcotest.bool "verdict column is stable" true
        (List.mem (List.nth row 1) [ "survives"; "fails"; "inconclusive" ]))
    verification.Questions.a_rows;
  (* sweep diags (none expected here, but any produced) fold into the
     session's diagnostics *)
  let session_codes = List.map (fun d -> d.Diag.d_code) (Batfish.diags bf) in
  List.iter
    (fun d ->
      check Alcotest.bool "report diag visible on the session" true
        (List.mem d.Diag.d_code session_codes))
    report.Failures.rp_diags

let suites =
  [ ( "failures",
      [ Alcotest.test_case "enumeration shape" `Quick enumeration_shape;
        Alcotest.test_case "pruned = brute force (verdicts and witnesses)"
          `Slow pruned_equals_brute;
        Alcotest.test_case "k=1 and k=2 on every profile" `Slow
          sweep_every_profile;
        Alcotest.test_case "chaos: warm = cold (100 seeds)" `Slow
          chaos_warm_equals_cold;
        Alcotest.test_case "pool sweep bit-identical" `Quick
          pool_sweep_identical;
        Alcotest.test_case "inconclusive never aborts" `Quick
          inconclusive_never_aborts;
        Alcotest.test_case "answer_failures surface" `Quick session_surface ] )
  ]
