(* The lint registry: fixture configs exercising every pass, selection
   filters, determinism, and the chaos property that lint never raises on
   any generated (and mutated) network. *)

let check = Alcotest.check

let parse text = fst (Parse.parse_config text)

let ctx_of texts = Lint.make_ctx (List.map parse texts)

let run_pass key ctx =
  match Lint.run ~select:[ key ] ctx with
  | Ok report -> Lint.findings report
  | Error msg -> Alcotest.failf "selection failed: %s" msg

let codes findings = List.map (fun (d : Diag.t) -> d.Diag.d_code) findings

let severities findings = List.map (fun (d : Diag.t) -> d.Diag.d_severity) findings

(* --- LINT003: BDD subsumption, not syntactic equality --- *)

(* The shadowed line shares no text with the shadowing line: only the
   symbolic engine can see that permit-tcp-host-80 ⊆ permit-ip-10/8. *)
let acl_shadow_semantic () =
  let cfg =
    "hostname edge1\n\
     interface Ethernet1\n\
     \ ip address 10.0.12.1 255.255.255.252\n\
     \ ip access-group EDGE_IN in\n\
     ip access-list extended EDGE_IN\n\
     \ permit ip 10.0.0.0 0.255.255.255 any\n\
     \ permit tcp host 10.1.2.3 any eq 80\n\
     \ deny udp any any eq 53\n"
  in
  let fs = run_pass "acl-shadowed-rule" (ctx_of [ cfg ]) in
  check Alcotest.int "one shadowed line" 1 (List.length fs);
  let d = List.hd fs in
  check Alcotest.string "stable code" "LINT003" d.Diag.d_code;
  check Alcotest.bool "same action is Warn" true (d.Diag.d_severity = Diag.Warn);
  check Alcotest.bool "names the dead line" true
    (Re.execp (Re.compile (Re.str "line 20")) d.Diag.d_message)

(* A covering line with the opposite action inverts the rule's intent:
   severity escalates to Error. *)
let acl_shadow_masked () =
  let cfg =
    "hostname edge2\n\
     ip access-list extended EDGE_IN\n\
     \ deny ip 10.0.0.0 0.255.255.255 any\n\
     \ permit tcp host 10.1.2.3 any eq 80\n"
  in
  let fs = run_pass "LINT003" (ctx_of [ cfg ]) in
  check Alcotest.int "one masked line" 1 (List.length fs);
  check Alcotest.bool "conflicting action is Error" true
    (severities fs = [ Diag.Error ])

(* Distinct, non-overlapping lines are all reachable: no findings. *)
let acl_no_false_positive () =
  let cfg =
    "hostname edge3\n\
     ip access-list extended EDGE_IN\n\
     \ permit tcp 10.1.0.0 0.0.255.255 any eq 443\n\
     \ permit tcp 10.2.0.0 0.0.255.255 any eq 443\n\
     \ deny ip any any\n"
  in
  check Alcotest.int "no findings" 0
    (List.length (run_pass "LINT003" (ctx_of [ cfg ])))

(* The union of earlier lines covers a line no single line covers: only
   subsumption against the accumulated union finds it. *)
let acl_shadow_by_union () =
  let cfg =
    "hostname edge4\n\
     ip access-list extended SPLIT\n\
     \ permit tcp 10.5.0.0 0.0.255.255 any eq 22\n\
     \ permit udp 10.5.0.0 0.0.255.255 any\n\
     \ permit tcp 10.5.1.0 0.0.0.255 any eq 22\n"
  in
  let fs = run_pass "LINT003" (ctx_of [ cfg ]) in
  check Alcotest.int "third line dead" 1 (List.length fs);
  check Alcotest.bool "blames line 10" true
    (Re.execp (Re.compile (Re.str "line 30")) (List.hd fs).Diag.d_message)

(* --- LINT004: dead route-map clauses --- *)

let routemap_dead_clause () =
  let cfg =
    "hostname rr1\n\
     route-map RM permit 10\n\
     route-map RM permit 20\n\
     \ match metric 5\n"
  in
  let fs = run_pass "routemap-dead-clause" (ctx_of [ cfg ]) in
  check Alcotest.int "clause 20 dead" 1 (List.length fs);
  let d = List.hd fs in
  check Alcotest.string "code" "LINT004" d.Diag.d_code;
  check Alcotest.bool "warn for same action" true (d.Diag.d_severity = Diag.Warn)

let routemap_dead_clause_masked () =
  let cfg =
    "hostname rr2\n\
     route-map RM deny 10\n\
     \ match tag 7\n\
     route-map RM permit 20\n\
     \ match tag 7\n\
     \ match metric 5\n"
  in
  let fs = run_pass "LINT004" (ctx_of [ cfg ]) in
  check Alcotest.int "clause 20 dead" 1 (List.length fs);
  check Alcotest.bool "opposite action is Error" true
    (severities fs = [ Diag.Error ])

let routemap_live_clauses () =
  let cfg =
    "hostname rr3\n\
     route-map RM permit 10\n\
     \ match metric 5\n\
     route-map RM permit 20\n\
     \ match tag 7\n"
  in
  check Alcotest.int "no findings" 0
    (List.length (run_pass "LINT004" (ctx_of [ cfg ])))

(* --- LINT005: BGP session compatibility --- *)

let session_pair local_as remote_decl =
  [ Printf.sprintf
      "hostname left\n\
       interface Ethernet1\n\
       \ ip address 10.7.0.1 255.255.255.252\n\
       router bgp %d\n\
       \ neighbor 10.7.0.2 remote-as %d\n"
      local_as remote_decl;
    "hostname right\n\
     interface Ethernet1\n\
     \ ip address 10.7.0.2 255.255.255.252\n\
     router bgp 65002\n\
     \ neighbor 10.7.0.1 remote-as 65001\n" ]

let bgp_as_mismatch () =
  (* left declares the peer as AS 65999; right is really AS 65002 *)
  let fs = run_pass "bgp-session" (ctx_of (session_pair 65001 65999)) in
  check Alcotest.bool "mismatch found" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.d_code = "LINT005" && d.Diag.d_severity = Diag.Error
         && Re.execp (Re.compile (Re.str "AS 65002")) d.Diag.d_message)
       fs)

let bgp_no_reciprocal () =
  let solo =
    [ "hostname left\n\
       interface Ethernet1\n\
       \ ip address 10.7.0.1 255.255.255.252\n\
       router bgp 65001\n\
       \ neighbor 10.7.0.2 remote-as 65002\n";
      "hostname right\n\
       interface Ethernet1\n\
       \ ip address 10.7.0.2 255.255.255.252\n\
       router bgp 65002\n" ]
  in
  let fs = run_pass "LINT005" (ctx_of solo) in
  check Alcotest.bool "one-sided session found" true
    (List.exists
       (fun (d : Diag.t) ->
         Re.execp (Re.compile (Re.str "no neighbor statement back")) d.Diag.d_message)
       fs)

let bgp_compatible_quiet () =
  check Alcotest.int "clean pair" 0
    (List.length (run_pass "LINT005" (ctx_of (session_pair 65001 65002))))

(* --- LINT006: interface addressing --- *)

let duplicate_ip () =
  let texts =
    [ "hostname a\ninterface Ethernet1\n ip address 10.9.1.1 255.255.255.0\n";
      "hostname b\ninterface Ethernet1\n ip address 10.9.1.1 255.255.255.0\n" ]
  in
  let fs = run_pass "interface-addressing" (ctx_of texts) in
  check Alcotest.bool "duplicate reported as error" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.d_severity = Diag.Error
         && Re.execp (Re.compile (Re.str "10.9.1.1")) d.Diag.d_message)
       fs)

let subnet_mismatch () =
  let texts =
    [ "hostname a\ninterface Ethernet1\n ip address 10.9.2.1 255.255.255.0\n";
      "hostname b\ninterface Ethernet1\n ip address 10.9.2.2 255.255.255.252\n" ]
  in
  let fs = run_pass "LINT006" (ctx_of texts) in
  check Alcotest.bool "mask mismatch reported" true
    (List.exists
       (fun (d : Diag.t) ->
         Re.execp (Re.compile (Re.str "not the same subnet")) d.Diag.d_message)
       fs)

(* --- LINT007: duplicate identities --- *)

let duplicate_router_id () =
  let texts =
    [ "hostname a\nrouter ospf 1\n router-id 1.1.1.1\n";
      "hostname b\nrouter ospf 1\n router-id 1.1.1.1\n" ]
  in
  let fs = run_pass "duplicate-identity" (ctx_of texts) in
  check Alcotest.bool "router-id collision" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.d_code = "LINT007"
         && Re.execp (Re.compile (Re.str "router-id 1.1.1.1")) d.Diag.d_message)
       fs)

let duplicate_hostname () =
  let files =
    [ ("a.cfg", parse "hostname twin\n"); ("b.cfg", parse "hostname twin\n") ]
  in
  let ctx = Lint.make_ctx ~files (List.map snd files) in
  let fs = run_pass "LINT007" ctx in
  check Alcotest.bool "hostname collision names both files" true
    (List.exists
       (fun (d : Diag.t) ->
         Re.execp (Re.compile (Re.str "a.cfg, b.cfg")) d.Diag.d_message)
       fs)

(* --- LINT001 / LINT002: the migrated reference passes --- *)

let undefined_and_unused () =
  let cfg =
    "hostname refs\n\
     interface Ethernet1\n\
     \ ip address 10.8.0.1 255.255.255.0\n\
     \ ip access-group MISSING in\n\
     ip access-list extended ORPHAN\n\
     \ permit ip any any\n"
  in
  let ctx = ctx_of [ cfg ] in
  let undef = run_pass "undefined-reference" ctx in
  check Alcotest.bool "undefined acl" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.d_code = "LINT001"
         && Re.execp (Re.compile (Re.str "'MISSING'")) d.Diag.d_message)
       undef);
  let unused = run_pass "unused-structure" ctx in
  check Alcotest.bool "unused acl" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.d_code = "LINT002"
         && Re.execp (Re.compile (Re.str "'ORPHAN'")) d.Diag.d_message)
       unused)

(* The same dangling name referenced twice from one site dedups to a single
   entry, and the result is sorted — stable across runs. *)
let undefined_references_deterministic () =
  let cfg =
    parse
      "hostname det\n\
       interface Ethernet1\n\
       \ ip address 10.8.1.1 255.255.255.0\n\
       \ ip access-group SAME in\n\
       \ ip access-group SAME out\n\
       interface Ethernet2\n\
       \ ip address 10.8.2.1 255.255.255.0\n\
       \ ip access-group OTHER in\n"
  in
  let refs = Parse.undefined_references cfg in
  check Alcotest.int "deduplicated" 2 (List.length refs);
  check Alcotest.bool "sorted" true (refs = List.sort compare refs);
  check Alcotest.bool "stable" true (refs = Parse.undefined_references cfg)

(* --- clean config: zero findings --- *)

let clean_config_quiet () =
  let fs =
    Lint.findings
      (Lint.run_passes (ctx_of (session_pair 65001 65002)) Lint.passes)
  in
  if fs <> [] then
    Alcotest.failf "expected no findings, got: %s"
      (String.concat "; " (List.map Diag.to_string fs))

(* --- registry mechanics --- *)

let selection () =
  (match Lint.resolve_selection ~select:[ "LINT003"; "bgp-session" ] () with
   | Ok ps -> check Alcotest.int "two selected" 2 (List.length ps)
   | Error m -> Alcotest.fail m);
  (match Lint.resolve_selection ~ignore_passes:[ "unused-structure" ] () with
   | Ok ps ->
     check Alcotest.int "one ignored" (List.length Lint.passes - 1) (List.length ps)
   | Error m -> Alcotest.fail m);
  match Lint.resolve_selection ~select:[ "nope" ] () with
  | Ok _ -> Alcotest.fail "unknown pass accepted"
  | Error m -> check Alcotest.bool "names the bad pass" true
                 (Re.execp (Re.compile (Re.str "nope")) m)

let report_shape () =
  let ctx =
    ctx_of
      [ "hostname edge1\n\
         interface Ethernet1\n\
         \ ip address 10.0.12.1 255.255.255.252\n\
         \ ip access-group A in\n\
         ip access-list extended A\n\
         \ permit ip 10.0.0.0 0.255.255.255 any\n\
         \ permit tcp host 10.1.2.3 any eq 80\n" ]
  in
  let report = Lint.run_passes ctx Lint.passes in
  check Alcotest.bool "max severity" true (Lint.max_severity report = Diag.Warn);
  check Alcotest.int "count at warn" 1 (Lint.count_at_least Diag.Warn report);
  check Alcotest.int "count at error" 0 (Lint.count_at_least Diag.Error report);
  let json = Lint.report_to_json report in
  List.iter
    (fun needle ->
      check Alcotest.bool ("json has " ^ needle) true
        (Re.execp (Re.compile (Re.str needle)) json))
    [ "\"code\":\"LINT003\""; "\"severity\":\"WARN\""; "\"max_severity\":\"WARN\"";
      "\"passes_run\":8" ];
  let text = Lint.report_to_text report in
  check Alcotest.bool "text has summary" true
    (Re.execp (Re.compile (Re.str "1 finding from 8 passes")) text);
  (* every finding is a well-formed diagnostic in the Lint phase *)
  List.iter
    (fun (d : Diag.t) ->
      check Alcotest.bool "well-formed" true (Diag.well_formed d);
      check Alcotest.bool "lint phase" true (d.Diag.d_phase = Diag.Lint))
    (Lint.findings report)

let deterministic_runs () =
  let texts =
    session_pair 65001 65999
    @ [ "hostname extra\n\
         interface Ethernet1\n\
         \ ip address 10.7.0.1 255.255.255.0\n\
         ip access-list extended A\n\
         \ permit ip any any\n\
         \ permit tcp any any\n" ]
  in
  let run () =
    List.map Diag.to_string (Lint.findings (Lint.run_passes (ctx_of texts) Lint.passes))
  in
  check Alcotest.(list string) "same findings twice" (run ()) (run ())

(* --- the chaos property: lint never raises, on anything --- *)

let lint_chaos () =
  let profiles =
    [ ("clos", fun () -> Netgen.clos ~name:"lc" ~spines:2 ~leaves:3 ());
      ("enterprise", fun () -> Netgen.enterprise ~name:"le" ~sites:3 ());
      ("campus", fun () -> Netgen.campus ~name:"lk" ~buildings:3 ());
      ("wan", fun () -> Netgen.wan ~name:"lw" ~pops:4 ()) ]
  in
  List.iteri
    (fun bi (pname, make) ->
      for seed = 0 to 24 do
        let where = Printf.sprintf "%s seed %d" pname seed in
        let rng = Rng.create ((7000 * bi) + seed) in
        let mutated, _ =
          Chaos.mutate_network ~rng ~mutations:(1 + Rng.int rng 3) (make ())
        in
        let bf = Batfish.init (Batfish.Snapshot.of_texts mutated.Netgen.n_configs) in
        let report =
          try Batfish.lint_all bf
          with exn -> Alcotest.failf "%s: lint raised %s" where (Printexc.to_string exn)
        in
        List.iter
          (fun (d : Diag.t) ->
            if not (Diag.well_formed d) then
              Alcotest.failf "%s: ill-formed finding %s" where (Diag.to_string d);
            if d.Diag.d_code = Lint.code_crash then
              Alcotest.failf "%s: pass crashed: %s" where d.Diag.d_message)
          (Lint.findings report)
      done)
    profiles

let suites =
  [ ( "lint",
      [ Alcotest.test_case "acl shadow (semantic)" `Quick acl_shadow_semantic;
        Alcotest.test_case "acl shadow (masked action)" `Quick acl_shadow_masked;
        Alcotest.test_case "acl no false positive" `Quick acl_no_false_positive;
        Alcotest.test_case "acl shadow by union" `Quick acl_shadow_by_union;
        Alcotest.test_case "route-map dead clause" `Quick routemap_dead_clause;
        Alcotest.test_case "route-map dead clause (masked)" `Quick routemap_dead_clause_masked;
        Alcotest.test_case "route-map live clauses" `Quick routemap_live_clauses;
        Alcotest.test_case "bgp as mismatch" `Quick bgp_as_mismatch;
        Alcotest.test_case "bgp no reciprocal" `Quick bgp_no_reciprocal;
        Alcotest.test_case "bgp compatible quiet" `Quick bgp_compatible_quiet;
        Alcotest.test_case "duplicate ip" `Quick duplicate_ip;
        Alcotest.test_case "subnet mismatch" `Quick subnet_mismatch;
        Alcotest.test_case "duplicate router-id" `Quick duplicate_router_id;
        Alcotest.test_case "duplicate hostname" `Quick duplicate_hostname;
        Alcotest.test_case "undefined + unused" `Quick undefined_and_unused;
        Alcotest.test_case "undefined refs deterministic" `Quick undefined_references_deterministic;
        Alcotest.test_case "clean config quiet" `Quick clean_config_quiet;
        Alcotest.test_case "selection" `Quick selection;
        Alcotest.test_case "report shape" `Quick report_shape;
        Alcotest.test_case "deterministic runs" `Quick deterministic_runs;
        Alcotest.test_case "lint chaos (never raises)" `Slow lint_chaos ] ) ]
