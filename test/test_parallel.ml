(* Sharded parallel verification: the engine's one non-negotiable property
   is that parallel results are bit-identical to the sequential engine
   (determinism is the paper's core lesson, §4.1.2). These tests pin it
   down: scheduler equivalence, manager-independent export/import and graph
   spec round-trips, domains=1 vs domains=4 equivalence for all-pairs
   reachability / multipath verdicts / lint findings on every Netgen
   profile, and a chaos-seeded repetition property. *)

let check = Alcotest.check

(* --- work-stealing scheduler ------------------------------------------- *)

let par_map_equivalence () =
  let arr = Array.init 100 (fun i -> i) in
  (* skewed per-item cost: the dynamic scheduler must still return results
     at their input index *)
  let f x =
    let acc = ref 0 in
    for i = 0 to (x mod 7) * 1000 do
      acc := !acc + i
    done;
    (x * 2) + (!acc mod 1)
  in
  let seq = Array.map f arr in
  List.iter
    (fun domains ->
      check (Alcotest.array Alcotest.int)
        (Printf.sprintf "map domains=%d" domains)
        seq
        (Par.map ~domains f arr);
      check (Alcotest.array Alcotest.int)
        (Printf.sprintf "map_dynamic domains=%d" domains)
        seq
        (Par.map_dynamic ~domains f arr))
    [ 1; 2; 4; 7 ];
  check (Alcotest.array Alcotest.int) "empty" [||] (Par.map ~domains:4 f [||]);
  check (Alcotest.array Alcotest.int) "singleton" [| 84 |] (Par.map ~domains:4 f [| 42 |])

let par_map_init_state () =
  (* worker state is built per domain and threaded through every task the
     worker claims; with domains=1 a single state serves all items *)
  let arr = Array.init 20 (fun i -> i) in
  let out =
    Par.map_dynamic_init ~domains:1
      ~init:(fun () -> ref 0)
      (fun st x ->
        incr st;
        x + (if !st > 0 then 0 else 1))
      arr
  in
  check (Alcotest.array Alcotest.int) "state-threaded results" arr out;
  let out4 =
    Par.map_dynamic_init ~domains:4
      ~init:(fun () -> Buffer.create 8)
      (fun _ x -> x * x)
      arr
  in
  check (Alcotest.array Alcotest.int) "domains=4 with state"
    (Array.map (fun x -> x * x) arr)
    out4

(* --- export / import across managers ----------------------------------- *)

let export_import_roundtrip () =
  let env = Pktset.create () in
  let man = Pktset.man env in
  let p s = Option.get (Prefix.of_string_opt s) in
  let a = Pktset.dst_prefix env (p "10.0.0.0/8") in
  let b = Pktset.src_prefix env (p "172.16.0.0/12") in
  let c = Bdd.band man a (Bdd.bnot man b) in
  let d = Pktset.range env Field.Dst_port 1024 60000 in
  let roots = [ a; b; c; d; Bdd.bot; Bdd.top ] in
  let ex = Bdd.export man roots in
  let env2 = Pktset.clone_empty env in
  let man2 = Pktset.man env2 in
  let imported = Bdd.import man2 ex in
  List.iter2
    (fun orig imp ->
      check (Alcotest.float 0.0) "same sat count"
        (Bdd.sat_count man orig) (Bdd.sat_count man2 imp))
    roots imported;
  (* round-trip back into the original manager: canonicity makes the result
     physically equal to where it started *)
  let back = Bdd.import man (Bdd.export man2 imported) in
  List.iter2
    (fun orig b -> check Alcotest.bool "round-trip equal" true (Bdd.equal orig b))
    roots back;
  (* witnesses are canonical too: same example packet from either manager *)
  check
    (Alcotest.option (Alcotest.testable (fun fmt p ->
         Format.pp_print_string fmt (Packet.to_string p)) ( = )))
    "same witness" (Pktset.to_packet env c)
    (Pktset.to_packet env2 (List.nth imported 2))

let cache_growth_identical () =
  (* the auto-growing op cache affects performance only: a manager squeezed
     into a tiny cache (forcing growth) computes the same functions *)
  let mk cache_bits max_cache_bits =
    let m = Bdd.create ~cache_bits ~max_cache_bits ~nvars:32 () in
    let vs = List.init 32 (fun i -> Bdd.var m i) in
    let acc = ref Bdd.top in
    List.iteri
      (fun i v ->
        let w = List.nth vs ((i * 7 + 3) mod 32) in
        acc :=
          if i mod 3 = 0 then Bdd.band m !acc (Bdd.bor m v w)
          else if i mod 3 = 1 then Bdd.bor m !acc (Bdd.band m v (Bdd.bnot m w))
          else Bdd.bxor m !acc (Bdd.band m v w))
      vs;
    (m, !acc)
  in
  let m_small, r_small = mk 2 6 in
  let m_big, r_big = mk 16 16 in
  check (Alcotest.float 0.0) "same function despite cache growth"
    (Bdd.sat_count m_big r_big) (Bdd.sat_count m_small r_small);
  check Alcotest.bool "tiny cache grew" true (Bdd.cache_size m_small > 4)

(* --- graph spec round-trip --------------------------------------------- *)

let net_query ?(scale = 0.25) (profile : Netgen.profile) =
  let net = profile.p_make scale in
  let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
  let dp = Dataplane.compute ~env:net.Netgen.n_env (Batfish.Snapshot.configs snap) in
  let find = Batfish.Snapshot.find snap in
  Fquery.make ~configs:find ~dp ()

let profile name =
  List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles

let spec_roundtrip () =
  let q = net_query (profile "NET1") in
  let g = Fquery.graph q in
  let spec = Fgraph.to_spec g in
  let g2 = Fgraph.of_spec spec in
  check Alcotest.int "same locations" (Fgraph.n_locs g) (Fgraph.n_locs g2);
  check Alcotest.int "same edges" (Fgraph.n_edges g) (Fgraph.n_edges g2);
  let q2 = Fquery.of_graph g2 ~dp:q.Fquery.dp ~configs:q.Fquery.configs in
  (* rows are plain data, so equality across managers is structural *)
  let rows = Fquery.all_pairs q () in
  let rows2 = Fquery.all_pairs q2 () in
  check Alcotest.bool "identical all-pairs rows" true (rows = rows2);
  check Alcotest.bool "rows are non-trivial" true (List.length rows > 0);
  (* importing into an explicit same-layout environment also works *)
  let g3 = Fgraph.of_spec ~env:(Pktset.clone_empty (Fgraph.env g)) spec in
  check Alcotest.int "same edges (explicit env)" (Fgraph.n_edges g) (Fgraph.n_edges g3)

(* --- parallel vs sequential on every profile --------------------------- *)

let domains_equivalence () =
  List.iter
    (fun (p : Netgen.profile) ->
      let q = net_query p in
      let rows1 = Fpar.all_pairs ~domains:1 q in
      let rows4 = Fpar.all_pairs ~domains:4 q in
      if rows1 <> rows4 then
        Alcotest.failf "%s: all-pairs rows differ between domains=1 and domains=4"
          p.Netgen.p_name;
      let v1 = Fpar.multipath_consistency ~domains:1 q in
      let v4 = Fpar.multipath_consistency ~domains:4 q in
      if List.length v1 <> List.length v4
         || not
              (List.for_all2
                 (fun (s1, b1) (s4, b4) -> s1 = s4 && Bdd.equal b1 b4)
                 v1 v4)
      then
        Alcotest.failf "%s: multipath verdicts differ between domains=1 and domains=4"
          p.Netgen.p_name;
      let net = p.p_make 0.25 in
      let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
      let configs = Batfish.Snapshot.configs snap in
      let findings domains =
        Lint.findings
          (Lint.run_passes (Lint.make_ctx ~domains configs) Lint.passes)
      in
      if findings 1 <> findings 4 then
        Alcotest.failf "%s: lint findings differ between domains=1 and domains=4"
          p.Netgen.p_name)
    Netgen.profiles

(* --- chaos-seeded determinism ------------------------------------------ *)

let chaos_parallel_determinism () =
  (* mutated snapshots still give deterministic parallel results: repeated
     runs at domains=3 agree with each other and with domains=1 *)
  for seed = 1 to 8 do
    let rng = Rng.create (1000 + seed) in
    let net = Netgen.clos ~name:"cpd" ~spines:2 ~leaves:3 () in
    let mutated, _ = Chaos.mutate_network ~rng ~mutations:2 net in
    match
      Fquery.make_checked
        ~configs:
          (let snap = Batfish.Snapshot.of_texts mutated.Netgen.n_configs in
           Batfish.Snapshot.find snap)
        ~dp:
          (let snap = Batfish.Snapshot.of_texts mutated.Netgen.n_configs in
           Dataplane.compute ~env:mutated.Netgen.n_env (Batfish.Snapshot.configs snap))
        ()
    with
    | Error _ -> () (* graph construction refused the snapshot: fine *)
    | Ok q ->
      let r1 = Fpar.all_pairs ~domains:1 q in
      let ra = Fpar.all_pairs ~domains:3 q in
      let rb = Fpar.all_pairs ~domains:3 q in
      if not (r1 = ra && ra = rb) then
        Alcotest.failf "seed %d: parallel all-pairs nondeterministic" seed
  done

(* --- query memo --------------------------------------------------------- *)

let memo_caching () =
  let q = net_query (profile "NET1") in
  let a = Fquery.to_delivered q () in
  let b = Fquery.to_delivered q () in
  check Alcotest.bool "memo returns the cached array" true (a == b);
  let hits, misses = Fquery.memo_stats q in
  check Alcotest.int "one hit" 1 hits;
  check Alcotest.int "one miss" 1 misses;
  (* a different header set is a different key *)
  let e = Fquery.env q in
  let hdr = Pktset.dst_prefix e (Option.get (Prefix.of_string_opt "172.16.0.0/24")) in
  let c = Fquery.to_delivered q ~hdr () in
  check Alcotest.bool "different key recomputes" true (not (c == a));
  let _, misses2 = Fquery.memo_stats q in
  check Alcotest.int "two misses" 2 misses2;
  (* same header BDD again: canonical ids make the key hit *)
  let hdr' = Pktset.dst_prefix e (Option.get (Prefix.of_string_opt "172.16.0.0/24")) in
  let d = Fquery.to_delivered q ~hdr:hdr' () in
  check Alcotest.bool "canonical key hits" true (c == d)

(* --- persistent pool properties ----------------------------------------- *)

let pool_map_equivalence () =
  let f () x = (x * x) + 1 in
  List.iter
    (fun k ->
      let pool = Par.Pool.create ~domains:k () in
      Fun.protect
        ~finally:(fun () -> Par.Pool.shutdown pool)
        (fun () ->
          let arr = Array.init 37 (fun i -> i) in
          let expect = Array.map (f ()) arr in
          let got = Par.Pool.run pool ~init:(fun () -> ()) f arr in
          check (Alcotest.array Alcotest.int)
            (Printf.sprintf "pool size %d = sequential" k)
            expect got;
          (* skewed costs: late tasks are much heavier, results stay in
             index order regardless of which worker ran what *)
          let skewed () x =
            let acc = ref 0 in
            for _ = 1 to x * x * 50 do
              incr acc
            done;
            x + (!acc * 0)
          in
          let got2 = Par.Pool.run pool ~init:(fun () -> ()) skewed arr in
          check (Alcotest.array Alcotest.int) "skewed costs keep index order" arr got2;
          check (Alcotest.array Alcotest.int) "empty" [||]
            (Par.Pool.run pool ~init:(fun () -> ()) f [||]);
          check (Alcotest.array Alcotest.int) "singleton" [| f () 6 |]
            (Par.Pool.run pool ~init:(fun () -> ()) f [| 6 |])))
    [ 1; 2; 4 ]

let pool_exceptions_and_shutdown () =
  let pool = Par.Pool.create ~domains:3 () in
  let boom () x = if x = 13 then failwith "boom13" else x * 2 in
  (match Par.Pool.run pool ~init:(fun () -> ()) boom (Array.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg -> check Alcotest.string "propagated message" "boom13" msg);
  (* a failed job must not wedge the workers: the pool stays usable *)
  let ok = Par.Pool.run pool ~init:(fun () -> ()) (fun () x -> x + 1) [| 1; 2; 3 |] in
  check (Alcotest.array Alcotest.int) "usable after a failed job" [| 2; 3; 4 |] ok;
  Par.Pool.shutdown pool;
  check Alcotest.bool "closed after shutdown" true (Par.Pool.closed pool);
  Par.Pool.shutdown pool;
  (* idempotent *)
  check Alcotest.bool "still closed" true (Par.Pool.closed pool);
  match Par.Pool.run pool ~init:(fun () -> ()) (fun () x -> x) [| 1 |] with
  | _ -> Alcotest.fail "run on a shut-down pool must raise"
  | exception Invalid_argument _ -> ()

let nested_pool_run_inline () =
  (* a task that re-enters its own pool must complete inline instead of
     deadlocking on the submission lock (the failure-sweep fan-out calls
     library code that may itself ask for parallelism) *)
  let pool = Par.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      check Alcotest.bool "caller is not a worker" false (Par.Pool.in_worker ());
      let out =
        Par.Pool.run pool
          ~init:(fun () -> ())
          (fun () x ->
            check Alcotest.bool "worker knows it is a worker" true
              (Par.Pool.in_worker ());
            let inner =
              Par.Pool.run pool ~init:(fun () -> ()) (fun () y -> y * y)
                [| x; x + 1 |]
            in
            (* broadcast from a worker is refused loudly, never a hang *)
            (match Par.Pool.broadcast pool (fun w -> w) with
            | _ -> Alcotest.fail "broadcast from a worker must raise"
            | exception Invalid_argument _ -> ());
            inner.(0) + inner.(1))
          (Array.init 8 Fun.id)
      in
      check (Alcotest.array Alcotest.int) "nested results correct"
        (Array.init 8 (fun x -> (x * x) + ((x + 1) * (x + 1))))
        out;
      (* map_dynamic_init from inside a worker must not spawn a second tier *)
      let out2 =
        Par.Pool.run pool
          ~init:(fun () -> ())
          (fun () x ->
            (Par.map_dynamic_init ~domains:4
               ~init:(fun () -> ())
               (fun () y -> y + 1)
               [| x |]).(0))
          [| 1; 2; 3 |]
      in
      check (Alcotest.array Alcotest.int) "nested map_dynamic_init inline"
        [| 2; 3; 4 |] out2)

let failed_job_leaves_workers_consistent () =
  (* satellite of ISSUE 6: a worker exception mid-job must not corrupt the
     stripe counters or the worker-resident MRU caches — follow-up jobs on
     the same pool keep their warm graphs and stay bit-identical *)
  let q = net_query (profile "NET1") in
  let pool = Par.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let serial = Fpar.all_pairs ~domains:1 q in
      let warmup = Fpar.all_pairs ~pool q in
      check Alcotest.bool "warmup identical" true (serial = warmup);
      let imports0, _ = Fpar.worker_stats () in
      (match
         Par.Pool.run pool
           ~init:(fun () -> ())
           (fun () x -> if x = 7 then failwith "mid-scenario crash" else x)
           (Array.init 16 Fun.id)
       with
      | _ -> Alcotest.fail "expected the exception to propagate"
      | exception Failure _ -> ());
      let after = Fpar.all_pairs ~pool q in
      let imports1, _ = Fpar.worker_stats () in
      check Alcotest.bool "post-failure results identical" true (serial = after);
      check Alcotest.int "no spurious graph imports counted" imports0 imports1)

let pool_warm_reuse_identical () =
  let q = net_query (profile "NET3") in
  let pool = Par.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let _, reuses0 = Fpar.worker_stats () in
      let serial = Fpar.all_pairs ~domains:1 q in
      let cold = Fpar.all_pairs ~pool q in
      let warm = Fpar.all_pairs ~pool q in
      check Alcotest.bool "cold pool call identical to serial" true (serial = cold);
      check Alcotest.bool "warm pool call identical to serial" true (serial = warm);
      let v1 = Fpar.multipath_consistency ~domains:1 q in
      let vp = Fpar.multipath_consistency ~pool q in
      check Alcotest.bool "warm multipath identical" true
        (List.length v1 = List.length vp
        && List.for_all2
             (fun (s1, b1) (s2, b2) -> s1 = s2 && Bdd.equal b1 b2)
             v1 vp);
      let _, reuses1 = Fpar.worker_stats () in
      check Alcotest.bool "resident workers reused their imported graph" true
        (reuses1 > reuses0))

let adaptive_cutoff_both_ways () =
  let q = net_query (profile "NET1") in
  let serial = Fpar.all_pairs ~domains:1 q in
  let saved = !Fpar.auto_cutoff in
  Fun.protect
    ~finally:(fun () -> Fpar.auto_cutoff := saved)
    (fun () ->
      let pool = Par.Pool.create ~domains:2 () in
      Fun.protect
        ~finally:(fun () -> Par.Pool.shutdown pool)
        (fun () ->
          Fpar.auto_cutoff := max_int;
          check Alcotest.bool "below cutoff plans serial" true
            (Fpar.plan ~pool ~auto:true ~tasks:100 ~cost:1_000 () = Fpar.Serial);
          let a = Fpar.all_pairs ~pool ~auto:true q in
          Fpar.auto_cutoff := 0;
          (match Fpar.plan ~pool ~auto:true ~tasks:100 ~cost:1_000 () with
          | Fpar.Parallel _ -> ()
          | Fpar.Serial -> Alcotest.fail "above cutoff must plan parallel");
          let b = Fpar.all_pairs ~pool ~auto:true q in
          check Alcotest.bool "forced-serial auto identical" true (a = serial);
          check Alcotest.bool "forced-parallel auto identical" true (b = serial)));
  (* without auto, plan never falls back on cost *)
  check Alcotest.bool "no auto: cost is ignored" true
    (Fpar.plan ~domains:2 ~auto:false ~tasks:100 ~cost:0 () = Fpar.Parallel 2)

let measured_cutoff_scaling () =
  let saved = !Fpar.auto_cutoff in
  Fun.protect
    ~finally:(fun () -> Fpar.auto_cutoff := saved)
    (fun () ->
      (* make sure at least the serial side of the calibration has samples *)
      let q = net_query (profile "NET1") in
      ignore (Fpar.all_pairs ~domains:1 q);
      Fpar.auto_cutoff := 0;
      check Alcotest.int "0 disables the serial fallback" 0
        (Fpar.effective_cutoff ~workload:Fpar.Uniform ~workers:4 ());
      check Alcotest.int "0 disables it for sharded passes too" 0
        (Fpar.effective_cutoff ~workload:Fpar.Sharded_pass ~workers:4 ());
      Fpar.auto_cutoff := 1_000;
      let u = Fpar.effective_cutoff ~workload:Fpar.Uniform ~workers:4 () in
      check Alcotest.bool "configured floor is respected" true (u >= 1_000);
      (match Fpar.measured_cutoff () with
      | Some m -> check Alcotest.int "measured cost raises the floor" (max 1_000 m) u
      | None -> check Alcotest.int "no samples: the floor stands" 1_000 u);
      (* multipath's two batched passes can at best halve the wall clock,
         so their cutoff is double the uniform one regardless of workers *)
      check Alcotest.int "sharded cutoff is doubled" (u * 2)
        (Fpar.effective_cutoff ~workload:Fpar.Sharded_pass ~workers:4 ());
      check Alcotest.int "sharded cutoff ignores worker count" (u * 2)
        (Fpar.effective_cutoff ~workload:Fpar.Sharded_pass ~workers:16 ());
      Fpar.auto_cutoff := max_int;
      check Alcotest.int "scaling saturates instead of overflowing" max_int
        (Fpar.effective_cutoff ~workload:Fpar.Sharded_pass ~workers:8 ()))

(* --- interning under parallel data-plane simulation --------------------- *)

let parallel_dataplane_identical () =
  (* BGP-heavy profile: the colored route-exchange phase fans per-node work
     across domains, each of which interns BGP attributes in its own
     domain-local pool. The resulting RIBs must be bit-identical to a
     serial simulation. *)
  let net = Netgen.wan ~name:"race" ~pops:5 () in
  let configs =
    Batfish.Snapshot.configs (Batfish.Snapshot.of_texts net.Netgen.n_configs)
  in
  let dp_at domains =
    Dataplane.compute
      ~options:{ Dataplane.default_options with Dataplane.domains }
      ~env:net.Netgen.n_env configs
  in
  let signature dp =
    List.map
      (fun n ->
        let nr = Dataplane.node dp n in
        ( n,
          List.map Route.to_string (Rib.best_routes nr.Dataplane.nr_main),
          List.map Route.to_string (Rib.candidates nr.Dataplane.nr_bgp) ))
      dp.Dataplane.node_order
  in
  let d1 = dp_at 1 in
  let d4 = dp_at 4 in
  check Alcotest.bool "routes survived" true (Dataplane.total_routes d1 > 0);
  check Alcotest.bool "parallel RIBs bit-identical to serial" true
    (signature d1 = signature d4);
  check Alcotest.bool "session reports identical" true
    (d1.Dataplane.sessions = d4.Dataplane.sessions);
  (* interned attributes from different domains still compare equal *)
  let mk () =
    Attrs.make ~origin:Vi.Origin_igp ~as_path:[ 65000; 65001 ] ~local_pref:120
      ~med:10 ~communities:[ 70007 ] ()
  in
  let cross = Par.map ~domains:2 (fun () -> mk ()) [| (); () |] in
  check Alcotest.bool "cross-domain attrs equal" true
    (Attrs.equal cross.(0) cross.(1) && Attrs.equal cross.(0) (mk ()))

let suites =
  [ ( "parallel",
      [ Alcotest.test_case "Par.map equivalence" `Quick par_map_equivalence;
        Alcotest.test_case "Par.map_dynamic_init state" `Quick par_map_init_state;
        Alcotest.test_case "BDD export/import round-trip" `Quick export_import_roundtrip;
        Alcotest.test_case "op-cache growth is invisible" `Quick cache_growth_identical;
        Alcotest.test_case "graph spec round-trip" `Quick spec_roundtrip;
        Alcotest.test_case "query memo" `Quick memo_caching;
        Alcotest.test_case "domains=1 vs 4 on every profile" `Slow domains_equivalence;
        Alcotest.test_case "chaos-seeded parallel determinism" `Slow
          chaos_parallel_determinism;
        Alcotest.test_case "pool map = sequential map" `Quick pool_map_equivalence;
        Alcotest.test_case "pool exceptions and shutdown" `Quick
          pool_exceptions_and_shutdown;
        Alcotest.test_case "nested pool entry runs inline" `Quick
          nested_pool_run_inline;
        Alcotest.test_case "failed job leaves workers consistent" `Quick
          failed_job_leaves_workers_consistent;
        Alcotest.test_case "pool warm reuse is bit-identical" `Quick
          pool_warm_reuse_identical;
        Alcotest.test_case "adaptive cutoff both ways" `Quick adaptive_cutoff_both_ways;
        Alcotest.test_case "measured cutoff scaling" `Quick measured_cutoff_scaling;
        Alcotest.test_case "parallel dataplane interning" `Slow
          parallel_dataplane_identical ] ) ]
