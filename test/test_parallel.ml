(* Sharded parallel verification: the engine's one non-negotiable property
   is that parallel results are bit-identical to the sequential engine
   (determinism is the paper's core lesson, §4.1.2). These tests pin it
   down: scheduler equivalence, manager-independent export/import and graph
   spec round-trips, domains=1 vs domains=4 equivalence for all-pairs
   reachability / multipath verdicts / lint findings on every Netgen
   profile, and a chaos-seeded repetition property. *)

let check = Alcotest.check

(* --- work-stealing scheduler ------------------------------------------- *)

let par_map_equivalence () =
  let arr = Array.init 100 (fun i -> i) in
  (* skewed per-item cost: the dynamic scheduler must still return results
     at their input index *)
  let f x =
    let acc = ref 0 in
    for i = 0 to (x mod 7) * 1000 do
      acc := !acc + i
    done;
    (x * 2) + (!acc mod 1)
  in
  let seq = Array.map f arr in
  List.iter
    (fun domains ->
      check (Alcotest.array Alcotest.int)
        (Printf.sprintf "map domains=%d" domains)
        seq
        (Par.map ~domains f arr);
      check (Alcotest.array Alcotest.int)
        (Printf.sprintf "map_dynamic domains=%d" domains)
        seq
        (Par.map_dynamic ~domains f arr))
    [ 1; 2; 4; 7 ];
  check (Alcotest.array Alcotest.int) "empty" [||] (Par.map ~domains:4 f [||]);
  check (Alcotest.array Alcotest.int) "singleton" [| 84 |] (Par.map ~domains:4 f [| 42 |])

let par_map_init_state () =
  (* worker state is built per domain and threaded through every task the
     worker claims; with domains=1 a single state serves all items *)
  let arr = Array.init 20 (fun i -> i) in
  let out =
    Par.map_dynamic_init ~domains:1
      ~init:(fun () -> ref 0)
      (fun st x ->
        incr st;
        x + (if !st > 0 then 0 else 1))
      arr
  in
  check (Alcotest.array Alcotest.int) "state-threaded results" arr out;
  let out4 =
    Par.map_dynamic_init ~domains:4
      ~init:(fun () -> Buffer.create 8)
      (fun _ x -> x * x)
      arr
  in
  check (Alcotest.array Alcotest.int) "domains=4 with state"
    (Array.map (fun x -> x * x) arr)
    out4

(* --- export / import across managers ----------------------------------- *)

let export_import_roundtrip () =
  let env = Pktset.create () in
  let man = Pktset.man env in
  let p s = Option.get (Prefix.of_string_opt s) in
  let a = Pktset.dst_prefix env (p "10.0.0.0/8") in
  let b = Pktset.src_prefix env (p "172.16.0.0/12") in
  let c = Bdd.band man a (Bdd.bnot man b) in
  let d = Pktset.range env Field.Dst_port 1024 60000 in
  let roots = [ a; b; c; d; Bdd.bot; Bdd.top ] in
  let ex = Bdd.export man roots in
  let env2 = Pktset.clone_empty env in
  let man2 = Pktset.man env2 in
  let imported = Bdd.import man2 ex in
  List.iter2
    (fun orig imp ->
      check (Alcotest.float 0.0) "same sat count"
        (Bdd.sat_count man orig) (Bdd.sat_count man2 imp))
    roots imported;
  (* round-trip back into the original manager: canonicity makes the result
     physically equal to where it started *)
  let back = Bdd.import man (Bdd.export man2 imported) in
  List.iter2
    (fun orig b -> check Alcotest.bool "round-trip equal" true (Bdd.equal orig b))
    roots back;
  (* witnesses are canonical too: same example packet from either manager *)
  check
    (Alcotest.option (Alcotest.testable (fun fmt p ->
         Format.pp_print_string fmt (Packet.to_string p)) ( = )))
    "same witness" (Pktset.to_packet env c)
    (Pktset.to_packet env2 (List.nth imported 2))

let cache_growth_identical () =
  (* the auto-growing op cache affects performance only: a manager squeezed
     into a tiny cache (forcing growth) computes the same functions *)
  let mk cache_bits max_cache_bits =
    let m = Bdd.create ~cache_bits ~max_cache_bits ~nvars:32 () in
    let vs = List.init 32 (fun i -> Bdd.var m i) in
    let acc = ref Bdd.top in
    List.iteri
      (fun i v ->
        let w = List.nth vs ((i * 7 + 3) mod 32) in
        acc :=
          if i mod 3 = 0 then Bdd.band m !acc (Bdd.bor m v w)
          else if i mod 3 = 1 then Bdd.bor m !acc (Bdd.band m v (Bdd.bnot m w))
          else Bdd.bxor m !acc (Bdd.band m v w))
      vs;
    (m, !acc)
  in
  let m_small, r_small = mk 2 6 in
  let m_big, r_big = mk 16 16 in
  check (Alcotest.float 0.0) "same function despite cache growth"
    (Bdd.sat_count m_big r_big) (Bdd.sat_count m_small r_small);
  check Alcotest.bool "tiny cache grew" true (Bdd.cache_size m_small > 4)

(* --- graph spec round-trip --------------------------------------------- *)

let net_query ?(scale = 0.25) (profile : Netgen.profile) =
  let net = profile.p_make scale in
  let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
  let dp = Dataplane.compute ~env:net.Netgen.n_env (Batfish.Snapshot.configs snap) in
  let find = Batfish.Snapshot.find snap in
  Fquery.make ~configs:find ~dp ()

let profile name =
  List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles

let spec_roundtrip () =
  let q = net_query (profile "NET1") in
  let g = Fquery.graph q in
  let spec = Fgraph.to_spec g in
  let g2 = Fgraph.of_spec spec in
  check Alcotest.int "same locations" (Fgraph.n_locs g) (Fgraph.n_locs g2);
  check Alcotest.int "same edges" (Fgraph.n_edges g) (Fgraph.n_edges g2);
  let q2 = Fquery.of_graph g2 ~dp:q.Fquery.dp ~configs:q.Fquery.configs in
  (* rows are plain data, so equality across managers is structural *)
  let rows = Fquery.all_pairs q () in
  let rows2 = Fquery.all_pairs q2 () in
  check Alcotest.bool "identical all-pairs rows" true (rows = rows2);
  check Alcotest.bool "rows are non-trivial" true (List.length rows > 0);
  (* importing into an explicit same-layout environment also works *)
  let g3 = Fgraph.of_spec ~env:(Pktset.clone_empty (Fgraph.env g)) spec in
  check Alcotest.int "same edges (explicit env)" (Fgraph.n_edges g) (Fgraph.n_edges g3)

(* --- parallel vs sequential on every profile --------------------------- *)

let domains_equivalence () =
  List.iter
    (fun (p : Netgen.profile) ->
      let q = net_query p in
      let rows1 = Fpar.all_pairs ~domains:1 q in
      let rows4 = Fpar.all_pairs ~domains:4 q in
      if rows1 <> rows4 then
        Alcotest.failf "%s: all-pairs rows differ between domains=1 and domains=4"
          p.Netgen.p_name;
      let v1 = Fpar.multipath_consistency ~domains:1 q in
      let v4 = Fpar.multipath_consistency ~domains:4 q in
      if List.length v1 <> List.length v4
         || not
              (List.for_all2
                 (fun (s1, b1) (s4, b4) -> s1 = s4 && Bdd.equal b1 b4)
                 v1 v4)
      then
        Alcotest.failf "%s: multipath verdicts differ between domains=1 and domains=4"
          p.Netgen.p_name;
      let net = p.p_make 0.25 in
      let snap = Batfish.Snapshot.of_texts net.Netgen.n_configs in
      let configs = Batfish.Snapshot.configs snap in
      let findings domains =
        Lint.findings
          (Lint.run_passes (Lint.make_ctx ~domains configs) Lint.passes)
      in
      if findings 1 <> findings 4 then
        Alcotest.failf "%s: lint findings differ between domains=1 and domains=4"
          p.Netgen.p_name)
    Netgen.profiles

(* --- chaos-seeded determinism ------------------------------------------ *)

let chaos_parallel_determinism () =
  (* mutated snapshots still give deterministic parallel results: repeated
     runs at domains=3 agree with each other and with domains=1 *)
  for seed = 1 to 8 do
    let rng = Rng.create (1000 + seed) in
    let net = Netgen.clos ~name:"cpd" ~spines:2 ~leaves:3 () in
    let mutated, _ = Chaos.mutate_network ~rng ~mutations:2 net in
    match
      Fquery.make_checked
        ~configs:
          (let snap = Batfish.Snapshot.of_texts mutated.Netgen.n_configs in
           Batfish.Snapshot.find snap)
        ~dp:
          (let snap = Batfish.Snapshot.of_texts mutated.Netgen.n_configs in
           Dataplane.compute ~env:mutated.Netgen.n_env (Batfish.Snapshot.configs snap))
        ()
    with
    | Error _ -> () (* graph construction refused the snapshot: fine *)
    | Ok q ->
      let r1 = Fpar.all_pairs ~domains:1 q in
      let ra = Fpar.all_pairs ~domains:3 q in
      let rb = Fpar.all_pairs ~domains:3 q in
      if not (r1 = ra && ra = rb) then
        Alcotest.failf "seed %d: parallel all-pairs nondeterministic" seed
  done

(* --- query memo --------------------------------------------------------- *)

let memo_caching () =
  let q = net_query (profile "NET1") in
  let a = Fquery.to_delivered q () in
  let b = Fquery.to_delivered q () in
  check Alcotest.bool "memo returns the cached array" true (a == b);
  let hits, misses = Fquery.memo_stats q in
  check Alcotest.int "one hit" 1 hits;
  check Alcotest.int "one miss" 1 misses;
  (* a different header set is a different key *)
  let e = Fquery.env q in
  let hdr = Pktset.dst_prefix e (Option.get (Prefix.of_string_opt "172.16.0.0/24")) in
  let c = Fquery.to_delivered q ~hdr () in
  check Alcotest.bool "different key recomputes" true (not (c == a));
  let _, misses2 = Fquery.memo_stats q in
  check Alcotest.int "two misses" 2 misses2;
  (* same header BDD again: canonical ids make the key hit *)
  let hdr' = Pktset.dst_prefix e (Option.get (Prefix.of_string_opt "172.16.0.0/24")) in
  let d = Fquery.to_delivered q ~hdr:hdr' () in
  check Alcotest.bool "canonical key hits" true (c == d)

let suites =
  [ ( "parallel",
      [ Alcotest.test_case "Par.map equivalence" `Quick par_map_equivalence;
        Alcotest.test_case "Par.map_dynamic_init state" `Quick par_map_init_state;
        Alcotest.test_case "BDD export/import round-trip" `Quick export_import_roundtrip;
        Alcotest.test_case "op-cache growth is invisible" `Quick cache_growth_identical;
        Alcotest.test_case "graph spec round-trip" `Quick spec_roundtrip;
        Alcotest.test_case "query memo" `Quick memo_caching;
        Alcotest.test_case "domains=1 vs 4 on every profile" `Slow domains_equivalence;
        Alcotest.test_case "chaos-seeded parallel determinism" `Slow
          chaos_parallel_determinism ] ) ]
