(* Quotient compression (ISSUE 10): compressed passes must be bit-identical
   to the uncompressed engine on every profile and under chaos-seeded
   mutations, and the fat-leaf fixture must actually compress (nontrivial
   partition, no per-pass fallbacks). *)

let check = Alcotest.check

(* Two query objects over the same graph and manager, compression forced
   off and on. Same manager ⇒ canonical BDDs ⇒ [=] on rows, multipath
   verdicts and loop sets is exact bit-identity. *)
let queries_of bf =
  match Batfish.try_forwarding bf with
  | Error _ -> None
  | Ok q0 ->
    let g = Fquery.graph q0 in
    let dp = Batfish.dataplane bf in
    let configs = Batfish.Snapshot.find (Batfish.snapshot bf) in
    Some
      ( Fquery.of_graph ~compress_mode:`Off g ~dp ~configs,
        Fquery.of_graph ~compress_mode:`On g ~dp ~configs )

(* Bounding the start fan-out keeps the seed sweep fast; the per-start pass
   is the unit under test, so identity over a sample is identity. *)
let compare_answers ~where q_off q_on =
  let starts =
    List.filteri (fun i _ -> i < 12) (Fquery.default_starts q_off)
  in
  if Fquery.all_pairs q_off ~starts () <> Fquery.all_pairs q_on ~starts ()
  then Alcotest.failf "%s: all-pairs rows differ under compression" where;
  if
    Fquery.multipath_consistency q_off ~starts ()
    <> Fquery.multipath_consistency q_on ~starts ()
  then Alcotest.failf "%s: multipath verdicts differ under compression" where;
  if Fquery.find_loops q_off <> Fquery.find_loops q_on then
    Alcotest.failf "%s: loop reports differ under compression" where

(* The acceptance property: >= 100 chaos-seeded snapshots across every
   Netgen profile, each answering all-pairs / multipath / loops identically
   with compression off and on. *)
let seeds_per_profile = 8

let chaos_identity () =
  let compared = ref 0 in
  List.iteri
    (fun bi (p : Netgen.profile) ->
      for seed = 0 to seeds_per_profile - 1 do
        let where = Printf.sprintf "%s seed %d" p.Netgen.p_name seed in
        let rng = Rng.create ((7919 * bi) + seed) in
        let mutated, _ =
          Chaos.mutate_network ~rng ~mutations:(1 + Rng.int rng 2)
            (p.Netgen.p_make 0.25)
        in
        let bf =
          Batfish.init ~env:mutated.Netgen.n_env
            (Batfish.Snapshot.of_texts mutated.Netgen.n_configs)
        in
        match queries_of bf with
        | None -> () (* mutation broke graph construction; skip the seed *)
        | Some (q_off, q_on) ->
          incr compared;
          compare_answers ~where q_off q_on
      done)
    Netgen.profiles;
  check Alcotest.bool "compared >= 100 seeded snapshots" true (!compared >= 100)

(* Every profile, un-mutated, at two scales — the deterministic half of the
   identity gate. *)
let profile_identity () =
  List.iter
    (fun (p : Netgen.profile) ->
      List.iter
        (fun scale ->
          let net = p.Netgen.p_make scale in
          let bf =
            Batfish.init ~env:net.Netgen.n_env
              (Batfish.Snapshot.of_texts net.Netgen.n_configs)
          in
          match queries_of bf with
          | None ->
            Alcotest.failf "%s x%g: forwarding graph failed" p.Netgen.p_name
              scale
          | Some (q_off, q_on) ->
            compare_answers
              ~where:(Printf.sprintf "%s x%g" p.Netgen.p_name scale)
              q_off q_on)
        [ 0.25; 0.5 ])
    Netgen.profiles

(* The HA ToR-group fabric: seven standbys per slot are template-identical
   to each other, so whole devices collapse into classes, the partition is
   strongly nontrivial, and the compressed passes must never fall back to
   the concrete engine. *)
let clos_fixture_compresses () =
  let net = Netgen.clos_ha ~name:"fatleaf" ~spines:4 ~slots:8 ~members:8 () in
  let bf =
    Batfish.init ~env:net.Netgen.n_env
      (Batfish.Snapshot.of_texts net.Netgen.n_configs)
  in
  match queries_of bf with
  | None -> Alcotest.fail "clos fixture: forwarding graph failed"
  | Some (q_off, q_on) ->
    let starts =
      List.filteri (fun i _ -> i < 12) (Fquery.default_starts q_off)
    in
    if Fquery.all_pairs q_off ~starts () <> Fquery.all_pairs q_on ~starts ()
    then Alcotest.fail "clos fixture: all-pairs rows differ";
    if
      Fquery.multipath_consistency q_off ~starts ()
      <> Fquery.multipath_consistency q_on ~starts ()
    then Alcotest.fail "clos fixture: multipath verdicts differ";
    (* stats before find_loops: the propagation passes themselves must run
       on the quotient without ever hitting the uncompressed fallback *)
    let passes, fallbacks = Fquery.compress_stats q_on in
    check Alcotest.bool "compressed passes ran" true (passes > 0);
    check Alcotest.int "no propagation fallbacks" 0 fallbacks;
    (match Fquery.compression_info q_on with
    | None -> Alcotest.fail "clos fixture: compression inactive under `On"
    | Some (ratio, classes, _) ->
      if ratio >= 0.5 then
        Alcotest.failf "clos fixture: ratio %.2f (expected < 0.5)" ratio;
      check Alcotest.bool "fewer classes than locations" true
        (classes < Fgraph.n_locs (Fquery.graph q_on)));
    (* the loop screen may decline on a fabric whose quotient has
       class-level cycles — that is a concrete re-run, not an identity
       risk, so here only the answers are gated *)
    if Fquery.find_loops q_off <> Fquery.find_loops q_on then
      Alcotest.fail "clos fixture: loop reports differ"

(* The crafted fixture of the issue: a star with genuinely interchangeable
   locations — one ingress root fanning into 24 transit nodes that each
   split between a delivery and a drop sink. Forward refinement keys on
   in-edge signatures, so the transits (same in-edge multiset from the
   root) and the sinks merge, driving the ratio far below 0.5. A uniform
   seed at the root runs on the base partition directly; a seed at one
   transit splits the merged class, which the run must detect
   ([`Non_uniform]) and {!Fcompress.specialize} must repair — bit-for-bit
   against Freach.forward both times. *)
let crafted_star_ratio () =
  let env = Pktset.create () in
  let n_mids = 24 in
  let locs =
    Array.of_list
      (Fgraph.Dst ("sink", "out") :: Fgraph.Dropped "sink"
       :: Fgraph.Src ("root", "in")
       :: List.init n_mids (fun i -> Fgraph.Fwd (Printf.sprintf "m%d" i)))
  in
  let loc_index = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace loc_index l i) locs;
  let root = 2 and mid i = 3 + i in
  let p_transit = Pktset.dst_prefix env (Prefix.of_string "10.0.0.0/8") in
  let p_narrow = Pktset.dst_prefix env (Prefix.of_string "10.1.0.0/16") in
  let edges =
    List.init n_mids (fun i ->
        { Fgraph.e_from = root; e_to = mid i; e_fn = Fgraph.Filter p_transit })
    @ List.init n_mids (fun i ->
          { Fgraph.e_from = mid i;
            e_to = (if i mod 2 = 0 then 0 else 1);
            e_fn = Fgraph.Filter Bdd.top })
  in
  let n = Array.length locs in
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  List.iter
    (fun e ->
      out_edges.(e.Fgraph.e_from) <- e :: out_edges.(e.Fgraph.e_from);
      in_edges.(e.Fgraph.e_to) <- e :: in_edges.(e.Fgraph.e_to))
    edges;
  let g =
    { Fgraph.env; locs; loc_index; out_edges; in_edges;
      varsets = Hashtbl.create 4 }
  in
  let p = Fcompress.base g `Fwd in
  if Fcompress.ratio p >= 0.5 then
    Alcotest.failf "crafted star: ratio %.2f (expected < 0.5)"
      (Fcompress.ratio p);
  let match_freach ~what seeds = function
    | `Sets sets ->
      let reference = Freach.forward g seeds in
      Array.iteri
        (fun i r ->
          if not (Bdd.equal r sets.(i)) then
            Alcotest.failf "crafted star (%s): location %d differs" what i)
        reference
    | `Non_uniform -> Alcotest.failf "crafted star (%s): non-uniform" what
    | `Mismatch -> Alcotest.failf "crafted star (%s): verification failed" what
  in
  (* the root is in-edge-free, hence a singleton class: the standard
     single-start seed is uniform on the base partition as designed *)
  let uni = [ (root, p_transit) ] in
  match_freach ~what:"base" uni (Fcompress.run g p ~seeds:uni);
  (* a second seed at an interior transit splits the merged transit class:
     the base run must refuse rather than silently merge the seeds *)
  let seeds = [ (root, p_transit); (mid 0, p_narrow) ] in
  (match Fcompress.run g p ~seeds with
  | `Non_uniform -> ()
  | `Sets _ | `Mismatch ->
    Alcotest.fail "crafted star: class-splitting seeds not detected");
  let p' = Fcompress.specialize g p ~seeds in
  match_freach ~what:"specialized" seeds (Fcompress.run g p' ~seeds)

(* Direct Fcompress check below the Fquery layer: base partition + seed
   specialization + quotient run must reproduce Freach.forward exactly. *)
let fcompress_run_matches_freach () =
  let net = Netgen.clos ~name:"direct" ~spines:4 ~leaves:6 () in
  let bf =
    Batfish.init ~env:net.Netgen.n_env
      (Batfish.Snapshot.of_texts net.Netgen.n_configs)
  in
  let q = Batfish.forwarding bf in
  let g = Fquery.graph q in
  let starts =
    List.filteri (fun i _ -> i < 4) (Fquery.default_starts q)
  in
  let seeds =
    List.filter_map
      (fun (n, io) ->
        let loc =
          match io with
          | Some i -> Fgraph.Src (n, i)
          | None -> Fgraph.Fwd n
        in
        Option.map (fun id -> (id, Fquery.clean q)) (Fgraph.loc_id g loc))
      starts
  in
  check Alcotest.bool "fixture has seeds" true (seeds <> []);
  let base = Fcompress.base g `Fwd in
  let outcome =
    match Fcompress.run g base ~seeds with
    | `Non_uniform ->
      Fcompress.run g (Fcompress.specialize g base ~seeds) ~seeds
    | o -> o
  in
  match outcome with
  | `Non_uniform ->
    Alcotest.fail "Fcompress.run non-uniform after specialization"
  | `Mismatch -> Alcotest.fail "Fcompress.run fell back on a clean fixture"
  | `Sets sets ->
    let reference = Freach.forward g seeds in
    check Alcotest.int "set arrays same length" (Array.length reference)
      (Array.length sets);
    Array.iteri
      (fun i r ->
        if not (Bdd.equal r sets.(i)) then
          Alcotest.failf "location %d: quotient result differs" i)
      reference

let suites =
  [ ( "compress",
      [ Alcotest.test_case "profiles identical off/on" `Quick profile_identity;
        Alcotest.test_case "clos fixture compresses without fallback" `Quick
          clos_fixture_compresses;
        Alcotest.test_case "crafted star ratio < 0.5" `Quick crafted_star_ratio;
        Alcotest.test_case "Fcompress.run = Freach.forward" `Quick
          fcompress_run_matches_freach;
        Alcotest.test_case "chaos identity (>=100 seeds)" `Slow chaos_identity ]
    ) ]
