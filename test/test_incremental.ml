(* ISSUE 4: the incremental analysis engine. The contract under test is
   bit-identity — [Batfish.update] after an edit must produce exactly the
   RIBs, FIBs, forwarding-graph spec, and query rows that a from-scratch
   analysis of the new file set produces — while the engine counters prove
   that only the dirty dependency components were actually re-simulated. *)

let check = Alcotest.check

let profile name = List.find (fun (p : Netgen.profile) -> p.Netgen.p_name = name) Netgen.profiles

let load ?options (net : Netgen.network) =
  Batfish.init ?options ~env:net.Netgen.n_env (Batfish.Snapshot.of_texts net.Netgen.n_configs)

(* one seeded semantic edit; returns (mutated network, the edited file) *)
let edit ~seed (net : Netgen.network) =
  let rng = Rng.create seed in
  match Chaos.semantic_edit_network ~rng net with
  | None -> Alcotest.fail "semantic edit applied to no file"
  | Some (net', mut) ->
    let name = List.hd mut.Chaos.mut_files in
    (net', (name, List.assoc name net'.Netgen.n_configs))

(* the complete routing state of a data plane, as plain comparable data *)
let routing_state (dp : Dataplane.t) =
  List.map
    (fun n ->
      let r = Dataplane.node dp n in
      (n, Rib.best_routes r.Dataplane.nr_main, Fib.entries r.Dataplane.nr_fib))
    dp.Dataplane.node_order

let counters_consistent name (dp : Dataplane.t) (rep : Batfish.update_report) =
  if rep.Batfish.up_nodes_changed = [] then begin
    (* cosmetic path: the base data plane (whose own stats say "everything
       simulated") is carried over wholesale *)
    check Alcotest.int (name ^ " nothing simulated") 0 rep.Batfish.up_nodes_simulated;
    check Alcotest.int (name ^ " no dirty component") 0 rep.Batfish.up_dirty_components
  end
  else begin
    let st = dp.Dataplane.stats in
    check Alcotest.int (name ^ " simulated counter") st.Dataplane.st_simulated_nodes
      rep.Batfish.up_nodes_simulated;
    check Alcotest.int (name ^ " reused counter") st.Dataplane.st_reused_nodes
      rep.Batfish.up_nodes_reused;
    check Alcotest.int (name ^ " dirty components") st.Dataplane.st_dirty_components
      rep.Batfish.up_dirty_components;
    check Alcotest.int (name ^ " frontier counter") st.Dataplane.st_frontier_nodes
      rep.Batfish.up_frontier_size;
    (* the frontier is exactly what got re-simulated inside dirty
       components, and early convergence can only happen on the frontier *)
    check Alcotest.int (name ^ " frontier = simulated")
      rep.Batfish.up_nodes_simulated rep.Batfish.up_frontier_size;
    check Alcotest.bool (name ^ " early within frontier") true
      (rep.Batfish.up_nodes_converged_early >= 0
      && rep.Batfish.up_nodes_converged_early <= rep.Batfish.up_frontier_size);
    (* every live node is either re-simulated or reused, never both/neither *)
    let live =
      List.length dp.Dataplane.node_order - List.length dp.Dataplane.quarantined
    in
    check Alcotest.int (name ^ " simulated+reused=live") live
      (st.Dataplane.st_simulated_nodes + st.Dataplane.st_reused_nodes)
  end

(* --- full bit-identity on every generated profile ----------------------- *)

let profile_identity () =
  List.iter
    (fun (p : Netgen.profile) ->
      let name = p.Netgen.p_name in
      let net = p.p_make 0.25 in
      let net', changed_file = edit ~seed:(Hashtbl.hash name) net in
      let bf = load net in
      ignore (Batfish.forwarding bf);
      let bf', rep = Batfish.update ~files:[ changed_file ] bf in
      let scratch = load net' in
      (* RIBs and FIBs *)
      let dp' = Batfish.dataplane bf' in
      let dps = Batfish.dataplane scratch in
      check Alcotest.bool (name ^ " routing state identical") true
        (routing_state dp' = routing_state dps);
      check Alcotest.bool (name ^ " sessions identical") true
        (dp'.Dataplane.sessions = dps.Dataplane.sessions);
      (* forwarding-graph spec and query rows *)
      let q' = Batfish.forwarding bf' and qs = Batfish.forwarding scratch in
      check Alcotest.bool (name ^ " graph spec identical") true
        (Fgraph.to_spec (Fquery.graph q') = Fgraph.to_spec (Fquery.graph qs));
      check Alcotest.bool (name ^ " all-pairs rows identical") true
        (Fquery.all_pairs q' () = Fquery.all_pairs qs ());
      (* the engine only re-simulated the dirty component(s) *)
      counters_consistent name dp' rep;
      if rep.Batfish.up_nodes_changed <> [] then begin
        check Alcotest.bool (name ^ " some component dirty") true
          (rep.Batfish.up_dirty_components >= 1);
        (* the forwarding graph is either rebuilt or provably unchanged —
           and a kept graph keeps its whole memo *)
        if not rep.Batfish.up_forwarding_rebuilt then
          check Alcotest.int (name ^ " kept forwarding keeps memo") 0
            rep.Batfish.up_memo_invalidated;
        (* the route-delta worklist re-simulates something, but never more
           than the members of the components holding a changed node *)
        let dirty_members =
          List.filter
            (fun comp ->
              List.exists (fun n -> List.mem n rep.Batfish.up_nodes_changed) comp)
            dp'.Dataplane.components
          |> List.concat
        in
        check Alcotest.bool
          (name ^ " simulated bounded by changed components") true
          (rep.Batfish.up_nodes_simulated >= 1
          && rep.Batfish.up_nodes_simulated <= List.length dirty_members)
      end)
    Netgen.profiles

(* --- many seeded single-file edits -------------------------------------- *)

let seeded_edits () =
  let nets = [ profile "NET1"; profile "NET3"; profile "NET5"; profile "NET7" ] in
  let identical = ref 0 in
  for seed = 1 to 100 do
    let p = List.nth nets (seed mod List.length nets) in
    let net = p.Netgen.p_make 0.25 in
    let net', changed_file = edit ~seed net in
    let bf = load net in
    let bf', rep = Batfish.update ~files:[ changed_file ] bf in
    let scratch = load net' in
    let dp' = Batfish.dataplane bf' in
    if routing_state dp' <> routing_state (Batfish.dataplane scratch) then
      Alcotest.failf "seed %d (%s): incremental and scratch routing state differ" seed
        p.Netgen.p_name;
    counters_consistent (Printf.sprintf "seed %d" seed) dp' rep;
    incr identical
  done;
  check Alcotest.int "100 edits, 100 identical" 100 !identical

(* --- multi-component reuse ---------------------------------------------- *)

let component_reuse () =
  (* two address-disjoint estates in one snapshot: an edit inside one must
     leave every node of the other reused, not re-simulated *)
  let estate prefix subnet =
    [ ( prefix ^ "1.cfg",
        String.concat "\n"
          [ "hostname " ^ prefix ^ "1";
            "interface e1"; Printf.sprintf " ip address %s.1.1 255.255.255.252" subnet;
            "interface lan"; Printf.sprintf " ip address %s.10.1 255.255.255.0" subnet;
            Printf.sprintf "ip route %s.20.0 255.255.255.0 %s.1.2" subnet subnet ] );
      ( prefix ^ "2.cfg",
        String.concat "\n"
          [ "hostname " ^ prefix ^ "2";
            "interface e1"; Printf.sprintf " ip address %s.1.2 255.255.255.252" subnet;
            "interface lan"; Printf.sprintf " ip address %s.20.1 255.255.255.0" subnet;
            Printf.sprintf "ip route %s.10.0 255.255.255.0 %s.1.1" subnet subnet ] ) ]
  in
  let a = estate "alpha" "10.1" and b = estate "beta" "192.168" in
  let bf = Batfish.init (Batfish.Snapshot.of_texts (a @ b)) in
  let dp = Batfish.dataplane bf in
  check Alcotest.int "estates are separate components" 2
    (List.length dp.Dataplane.components);
  (* reroute alpha1's static route straight to the LAN next hop *)
  let edited =
    ( "alpha1.cfg",
      String.concat "\n"
        [ "hostname alpha1";
          "interface e1"; " ip address 10.1.1.1 255.255.255.252";
          "interface lan"; " ip address 10.1.10.1 255.255.255.0";
          "ip route 10.1.20.0 255.255.255.0 10.1.1.2";
          "ip route 10.1.30.0 255.255.255.0 10.1.1.2" ] )
  in
  let bf', rep = Batfish.update ~files:[ edited ] bf in
  let dp' = Batfish.dataplane bf' in
  check (Alcotest.list Alcotest.string) "only alpha nodes changed" [ "alpha1" ]
    rep.Batfish.up_nodes_changed;
  (* the delta worklist stops at the edited node: alpha1's new static route
     never leaves it (no redistribution), so alpha2 — though in the same
     dirty component — is warm-started straight from its base RIBs *)
  check Alcotest.int "only the edited node re-simulated" 1
    rep.Batfish.up_nodes_simulated;
  check Alcotest.int "everything else reused" 3 rep.Batfish.up_nodes_reused;
  check Alcotest.int "frontier is the edited node" 1 rep.Batfish.up_frontier_size;
  check Alcotest.int "edited node really changed" 0
    rep.Batfish.up_nodes_converged_early;
  check Alcotest.int "one dirty component of two" 1 rep.Batfish.up_dirty_components;
  check Alcotest.int "two components" 2 rep.Batfish.up_components;
  (* and the merged result still matches scratch *)
  let scratch = Batfish.init (Batfish.Snapshot.of_texts (edited :: List.tl a @ b)) in
  check Alcotest.bool "combined routing state identical" true
    (routing_state dp' = routing_state (Batfish.dataplane scratch))

(* --- cosmetic edits keep everything, memo included ---------------------- *)

let cosmetic_edit () =
  let net = (profile "NET5").p_make 0.25 in
  let bf = load net in
  let q = Batfish.forwarding bf in
  ignore (Fquery.to_delivered q ());
  let _, misses_before = Fquery.memo_stats q in
  check Alcotest.bool "memo primed" true (misses_before > 0);
  let name, text = List.hd net.Netgen.n_configs in
  let bf', rep = Batfish.update ~files:[ (name, text ^ "\n! only a comment") ] bf in
  check Alcotest.int "file changed" 1 rep.Batfish.up_files_changed;
  check Alcotest.int "file reparsed" 1 rep.Batfish.up_files_reparsed;
  check (Alcotest.list Alcotest.string) "no node changed" [] rep.Batfish.up_nodes_changed;
  check Alcotest.int "nothing simulated" 0 rep.Batfish.up_nodes_simulated;
  check Alcotest.bool "forwarding not rebuilt" false rep.Batfish.up_forwarding_rebuilt;
  check Alcotest.int "memo kept" 0 rep.Batfish.up_memo_invalidated;
  (* the exact engine objects carry over: a primed memo answers from cache *)
  let q' = Batfish.forwarding bf' in
  check Alcotest.bool "same engine object" true (q == q');
  ignore (Fquery.to_delivered q' ());
  let hits_after, misses_after = Fquery.memo_stats q' in
  check Alcotest.int "no new miss" misses_before misses_after;
  check Alcotest.bool "memo hit" true (hits_after > 0);
  (* fingerprint-keyed parse reuse: only the edited file was re-read *)
  check Alcotest.int "reparsed one file"
    1 (Batfish.Snapshot.reparsed (Batfish.snapshot bf'))

(* --- route-delta frontier on a hand-built eBGP chain --------------------- *)

(* r1 - r2 - r3 - r4 - r5, one eBGP session per adjacent pair, a /24
   advertised from each end. Every node's fixed point depends on its
   neighbors, so component-granularity reuse can never skip a member — the
   per-node worklist can. *)
let chain_configs ?(r3_extra = []) () =
  let cfg name body = (name ^ ".cfg", String.concat "\n" body) in
  [ cfg "r1"
      [ "hostname r1";
        "interface east"; " ip address 10.0.1.1 255.255.255.252";
        "interface lan"; " ip address 10.10.1.1 255.255.255.0";
        "router bgp 65001";
        " bgp router-id 1.1.1.1";
        " neighbor 10.0.1.2 remote-as 65002";
        " network 10.10.1.0 mask 255.255.255.0" ];
    cfg "r2"
      [ "hostname r2";
        "interface west"; " ip address 10.0.1.2 255.255.255.252";
        "interface east"; " ip address 10.0.2.1 255.255.255.252";
        "router bgp 65002";
        " bgp router-id 2.2.2.2";
        " neighbor 10.0.1.1 remote-as 65001";
        " neighbor 10.0.2.2 remote-as 65003" ];
    cfg "r3"
      ([ "hostname r3";
         "interface west"; " ip address 10.0.2.2 255.255.255.252";
         "interface east"; " ip address 10.0.3.1 255.255.255.252";
         "interface lan"; " ip address 10.30.1.1 255.255.255.0";
         "router bgp 65003";
         " bgp router-id 3.3.3.3";
         " neighbor 10.0.2.1 remote-as 65002";
         " neighbor 10.0.3.2 remote-as 65004" ]
      @ r3_extra);
    cfg "r4"
      [ "hostname r4";
        "interface west"; " ip address 10.0.3.2 255.255.255.252";
        "interface east"; " ip address 10.0.4.1 255.255.255.252";
        "router bgp 65004";
        " bgp router-id 4.4.4.4";
        " neighbor 10.0.3.1 remote-as 65003";
        " neighbor 10.0.4.2 remote-as 65005" ];
    cfg "r5"
      [ "hostname r5";
        "interface west"; " ip address 10.0.4.2 255.255.255.252";
        "interface lan"; " ip address 10.50.1.1 255.255.255.0";
        "router bgp 65005";
        " bgp router-id 5.5.5.5";
        " neighbor 10.0.4.1 remote-as 65004";
        " network 10.50.1.0 mask 255.255.255.0" ] ]

let chain_update ~r3_extra =
  let base = chain_configs () in
  let bf = Batfish.init (Batfish.Snapshot.of_texts base) in
  let dp = Batfish.dataplane bf in
  check Alcotest.int "chain is one component" 1
    (List.length dp.Dataplane.components);
  (* the chain actually propagates: r5 learns r1's /24 across four hops *)
  let r5 = Dataplane.node dp "r5" in
  check Alcotest.bool "r5 learned the far prefix" true
    (List.exists
       (fun (r : Route.t) -> r.Route.net = Prefix.of_string "10.10.1.0/24")
       (Rib.best_routes r5.Dataplane.nr_main));
  let edited = chain_configs ~r3_extra () in
  let bf', rep = Batfish.update ~files:[ List.nth edited 2 ] bf in
  let scratch = Batfish.init (Batfish.Snapshot.of_texts edited) in
  check Alcotest.bool "chain routing state identical" true
    (routing_state (Batfish.dataplane bf')
    = routing_state (Batfish.dataplane scratch));
  rep

let chain_frontier_stops () =
  (* a static route on r3 that is never redistributed into BGP: r3's RIB
     changes, its advertisements don't. The worklist must re-simulate r3
     plus its immediate session partners (whose viability reads r3's config
     and RIB) and stop there — r1 and r5, two hops out, keep their base
     fixed point untouched. *)
  let rep =
    chain_update ~r3_extra:[ "ip route 10.99.0.0 255.255.0.0 10.30.1.2" ]
  in
  check (Alcotest.list Alcotest.string) "only r3 changed" [ "r3" ]
    rep.Batfish.up_nodes_changed;
  check Alcotest.int "frontier stops one hop out" 3 rep.Batfish.up_frontier_size;
  check Alcotest.int "ends of the chain reused" 2 rep.Batfish.up_nodes_reused;
  (* r3's own state changed; both partners re-converged to the base *)
  check Alcotest.int "partners converged early" 2
    rep.Batfish.up_nodes_converged_early

let noop_advert_edit () =
  (* semantics-free model change: an unreferenced ACL reordered in place.
     The VI model differs (so r3 counts as changed and is re-simulated) but
     no RIB, advertisement, or session can move — the whole frontier must
     converge early and nothing downstream re-runs. *)
  let base_acl =
    [ "ip access-list extended UNUSED";
      " 10 permit ip 10.1.0.0 0.0.255.255 any";
      " 20 permit ip 10.2.0.0 0.0.255.255 any" ]
  in
  let reordered =
    [ "ip access-list extended UNUSED";
      " 10 permit ip 10.2.0.0 0.0.255.255 any";
      " 20 permit ip 10.1.0.0 0.0.255.255 any" ]
  in
  let base = chain_configs ~r3_extra:base_acl () in
  let bf = Batfish.init (Batfish.Snapshot.of_texts base) in
  ignore (Batfish.dataplane bf);
  let edited = chain_configs ~r3_extra:reordered () in
  let bf', rep = Batfish.update ~files:[ List.nth edited 2 ] bf in
  check (Alcotest.list Alcotest.string) "only r3 changed" [ "r3" ]
    rep.Batfish.up_nodes_changed;
  check Alcotest.int "frontier is r3 plus partners" 3 rep.Batfish.up_frontier_size;
  check Alcotest.int "zero downstream re-simulation" 2 rep.Batfish.up_nodes_reused;
  check Alcotest.int "entire frontier converged early" rep.Batfish.up_frontier_size
    rep.Batfish.up_nodes_converged_early;
  let scratch = Batfish.init (Batfish.Snapshot.of_texts edited) in
  check Alcotest.bool "no-op edit routing state identical" true
    (routing_state (Batfish.dataplane bf')
    = routing_state (Batfish.dataplane scratch))

(* --- dispositions: hop-limit exhaustion vs a genuine loop ---------------- *)

let hop_limit_vs_loop () =
  let parse ls = fst (Parse.parse_config (String.concat "\n" ls)) in
  (* a genuine routing loop: the same (node, packet) state repeats *)
  let looped =
    [ parse
        [ "hostname a"; "interface e1"; " ip address 10.0.1.1 255.255.255.252";
          "ip route 10.9.0.0 255.255.0.0 10.0.1.2" ];
      parse
        [ "hostname b"; "interface e1"; " ip address 10.0.1.2 255.255.255.252";
          "ip route 10.9.0.0 255.255.0.0 10.0.1.1" ] ]
  in
  let dp = Dataplane.compute looped in
  let find name = List.find_opt (fun (c : Vi.t) -> c.Vi.hostname = name) looped in
  let pkt = Packet.tcp ~src:(Ipv4.of_string "10.0.1.1") ~dst:(Ipv4.of_string "10.9.0.1") 80 in
  let traces = Traceroute.run ~configs:find ~dp ~start:"a" pkt in
  check Alcotest.bool "repeating state reported as LOOP" true
    (List.exists
       (fun tr ->
         match tr.Traceroute.disposition with Traceroute.Loop _ -> true | _ -> false)
       traces);
  (* the same loop under a tiny hop budget is a hop-limit exhaustion of a
     path whose states never repeat exactly... build a long linear chain and
     walk it with max_hops smaller than its length *)
  let chain_node i =
    parse
      ([ Printf.sprintf "hostname c%d" i;
         "interface w"; Printf.sprintf " ip address 10.1.%d.2 255.255.255.252" (i - 1);
         "interface e"; Printf.sprintf " ip address 10.1.%d.1 255.255.255.252" i ]
      @
      if i < 6 then
        [ Printf.sprintf "ip route 10.99.0.0 255.255.0.0 10.1.%d.2" i ]
      else [ "interface lan"; " ip address 10.99.0.1 255.255.0.0" ])
  in
  let chain = List.init 6 (fun i -> chain_node (i + 1)) in
  let dp2 = Dataplane.compute chain in
  let find2 name = List.find_opt (fun (c : Vi.t) -> c.Vi.hostname = name) chain in
  let pkt2 = Packet.tcp ~src:(Ipv4.of_string "10.1.0.1") ~dst:(Ipv4.of_string "10.99.0.9") 80 in
  let full = Traceroute.run ~configs:find2 ~dp:dp2 ~start:"c1" pkt2 in
  check Alcotest.bool "full budget delivers" true
    (List.exists (fun tr -> Traceroute.is_delivered tr.Traceroute.disposition) full);
  let cut = Traceroute.run ~configs:find2 ~dp:dp2 ~max_hops:3 ~start:"c1" pkt2 in
  check Alcotest.bool "tiny budget reports HOP_LIMIT_EXCEEDED, not LOOP" true
    (List.exists
       (fun tr ->
         match tr.Traceroute.disposition with
         | Traceroute.Hop_limit_exceeded _ -> true
         | _ -> false)
       cut);
  check Alcotest.bool "tiny budget is not a LOOP" true
    (List.for_all
       (fun tr ->
         match tr.Traceroute.disposition with Traceroute.Loop _ -> false | _ -> true)
       cut);
  check Alcotest.bool "hop-limit not delivered" true
    (not (Traceroute.is_delivered (Traceroute.Hop_limit_exceeded "c4")))

(* --- NAT topologies: both engines agree on the final packet -------------- *)

let nat_differential () =
  (* the §4.3.2 harness now also checks, flow by flow, that the traceroute
     final packet (post-NAT) lies inside the symbolic delivered image and
     that every trace's final packet is its last hop's packet; run it over
     seeded semantic edits of the NAT-bearing profiles *)
  List.iter
    (fun (name, seed) ->
      let p = profile name in
      let net, _ = edit ~seed (p.Netgen.p_make 0.25) in
      let bf = load net in
      let flows = Batfish.differential_engine_test bf in
      check Alcotest.bool (name ^ " flows checked") true (flows > 0))
    [ ("NET1", 7); ("NET7", 11) ]

let suites =
  [ ( "incremental",
      [ Alcotest.test_case "per-profile bit-identity" `Quick profile_identity;
        Alcotest.test_case "100 seeded edits identical" `Slow seeded_edits;
        Alcotest.test_case "multi-component reuse" `Quick component_reuse;
        Alcotest.test_case "chain frontier stops" `Quick chain_frontier_stops;
        Alcotest.test_case "no-op advert edit" `Quick noop_advert_edit;
        Alcotest.test_case "cosmetic edit keeps memo" `Quick cosmetic_edit;
        Alcotest.test_case "hop limit vs loop" `Quick hop_limit_vs_loop;
        Alcotest.test_case "NAT differential harness" `Quick nat_differential ] ) ]
